//! State-based isomorphism — the paper's first proposed generalization.
//!
//! Discussion (§6): "we can define isomorphism based on *states* of
//! processes, rather than computations … Most of the results in this
//! paper are applicable in the first case."
//!
//! This module makes that remark precise and testable. A
//! [`ViewAbstraction`] maps a process's local computation to an
//! *observation key*; two computations are `x [P]ᵥ y` iff every `p ∈ P`
//! has the same key in both. The full-history abstraction recovers the
//! paper's isomorphism exactly; coarser abstractions model processes
//! whose knowledge is determined by bounded state.
//!
//! The ablation, executable via [`check_event_semantics`]:
//!
//! * every `[P]ᵥ` is still an equivalence, so all twelve knowledge facts
//!   of §4.1 survive *any* abstraction (they only use the equivalence
//!   structure) — see the tests;
//! * Theorem 3's event semantics (receives shrink, sends grow,
//!   **internal events preserve**) holds for the full-history view but
//!   **fails for forgetful views**: an internal event can overwrite
//!   state and thereby lose — or spuriously create — knowledge. The
//!   checker finds concrete counterexamples on small universes.
//!
//! This is exactly the boundary the paper hints at: the results carry
//! over when the state faithfully encodes the local computation, and
//! break where it forgets.

use crate::bitset::CompSet;
use crate::universe::{CompId, Universe};
use hpl_model::{Computation, EventKind, ProcessId, ProcessSet};
use std::collections::HashMap;
use std::fmt;

/// Maps a process's local computation to its observable view key.
///
/// Keys are arbitrary byte strings; equality of keys defines the
/// state-based isomorphism.
pub trait ViewAbstraction {
    /// The observation key of process `p` in computation `c`.
    fn view_key(&self, c: &Computation, p: ProcessId) -> Vec<u64>;

    /// A short name for reports.
    fn name(&self) -> &str;
}

/// The identity abstraction: the view is the full local computation.
/// State-based isomorphism under this abstraction *is* the paper's
/// isomorphism.
#[derive(Clone, Copy, Debug, Default)]
pub struct FullHistory;

impl ViewAbstraction for FullHistory {
    fn view_key(&self, c: &Computation, p: ProcessId) -> Vec<u64> {
        c.projection_ids(p)
            .into_iter()
            .map(|e| e.index() as u64)
            .collect()
    }

    fn name(&self) -> &str {
        "full-history"
    }
}

/// A forgetful abstraction: the view is the *surface form* (kind, peer,
/// action tag — not the globally distinguished identity) of only the
/// last `window` events of the local computation — a bounded-memory
/// process.
///
/// Surface form matters: globally distinguished event ids encode the
/// full preceding history (the interning convention), so a truly
/// forgetful state must drop them.
#[derive(Clone, Copy, Debug)]
pub struct BoundedMemory {
    /// How many trailing events the process remembers.
    pub window: usize,
}

impl ViewAbstraction for BoundedMemory {
    fn view_key(&self, c: &Computation, p: ProcessId) -> Vec<u64> {
        let events: Vec<_> = c.iter().filter(|e| e.is_on(p)).collect();
        let start = events.len().saturating_sub(self.window);
        events[start..]
            .iter()
            .flat_map(|e| match e.kind() {
                EventKind::Send { to, .. } => [1u64, to.index() as u64],
                EventKind::Receive { from, .. } => [2u64, from.index() as u64],
                EventKind::Internal { action } => [3u64, u64::from(action.tag())],
            })
            .collect()
    }

    fn name(&self) -> &str {
        "bounded-memory"
    }
}

/// An abstraction that only counts events per kind — the coarsest
/// state that still distinguishes activity levels.
#[derive(Clone, Copy, Debug, Default)]
pub struct EventCounts;

impl ViewAbstraction for EventCounts {
    fn view_key(&self, c: &Computation, p: ProcessId) -> Vec<u64> {
        let mut sends = 0u64;
        let mut recvs = 0u64;
        let mut internals = 0u64;
        for e in c.iter().filter(|e| e.is_on(p)) {
            match e.kind() {
                EventKind::Send { .. } => sends += 1,
                EventKind::Receive { .. } => recvs += 1,
                EventKind::Internal { .. } => internals += 1,
            }
        }
        vec![sends, recvs, internals]
    }

    fn name(&self) -> &str {
        "event-counts"
    }
}

/// State-based isomorphism classes over a universe, for one abstraction.
pub struct ViewIndex<'u, V: ViewAbstraction> {
    universe: &'u Universe,
    abstraction: V,
    cache: std::cell::RefCell<HashMap<u128, std::rc::Rc<Vec<CompSet>>>>,
    class_of_cache: std::cell::RefCell<HashMap<u128, std::rc::Rc<Vec<u32>>>>,
}

impl<'u, V: ViewAbstraction> ViewIndex<'u, V> {
    /// Creates the index.
    pub fn new(universe: &'u Universe, abstraction: V) -> Self {
        ViewIndex {
            universe,
            abstraction,
            cache: std::cell::RefCell::new(HashMap::new()),
            class_of_cache: std::cell::RefCell::new(HashMap::new()),
        }
    }

    /// The underlying universe.
    pub fn universe(&self) -> &'u Universe {
        self.universe
    }

    fn build(&self, p: ProcessSet) {
        let n = self.universe.len();
        let mut key_to_class: HashMap<Vec<u64>, u32> = HashMap::new();
        let mut class_of = vec![0u32; n];
        let mut members: Vec<CompSet> = Vec::new();
        for (id, c) in self.universe.iter() {
            let mut key: Vec<u64> = Vec::new();
            for proc in p.iter() {
                key.push(u64::MAX);
                key.extend(self.abstraction.view_key(c, proc));
            }
            let next = members.len() as u32;
            let class = *key_to_class.entry(key).or_insert_with(|| {
                members.push(CompSet::new(n));
                next
            });
            class_of[id.index()] = class;
            members[class as usize].insert(id.index());
        }
        self.cache
            .borrow_mut()
            .insert(p.bits(), std::rc::Rc::new(members));
        self.class_of_cache
            .borrow_mut()
            .insert(p.bits(), std::rc::Rc::new(class_of));
    }

    fn member_sets(&self, p: ProcessSet) -> std::rc::Rc<Vec<CompSet>> {
        if !self.cache.borrow().contains_key(&p.bits()) {
            self.build(p);
        }
        std::rc::Rc::clone(&self.cache.borrow()[&p.bits()])
    }

    fn class_of(&self, p: ProcessSet) -> std::rc::Rc<Vec<u32>> {
        if !self.class_of_cache.borrow().contains_key(&p.bits()) {
            self.build(p);
        }
        std::rc::Rc::clone(&self.class_of_cache.borrow()[&p.bits()])
    }

    /// Tests state-based isomorphism `x [P]ᵥ y`.
    pub fn isomorphic(&self, x: CompId, y: CompId, p: ProcessSet) -> bool {
        let classes = self.class_of(p);
        classes[x.index()] == classes[y.index()]
    }

    /// The satisfaction set of `P knows ⟨sat⟩` under this abstraction:
    /// `{x : [P]ᵥ-class of x ⊆ sat}`.
    pub fn knows_set(&self, p: ProcessSet, sat: &CompSet) -> CompSet {
        let members = self.member_sets(p);
        let mut out = CompSet::new(self.universe.len());
        for mset in members.iter() {
            if mset.is_subset(sat) {
                out.union_with(mset);
            }
        }
        out
    }

    /// The `[P]ᵥ`-class of `x`.
    pub fn class_set(&self, x: CompId, p: ProcessSet) -> CompSet {
        let classes = self.class_of(p);
        let members = self.member_sets(p);
        members[classes[x.index()] as usize].clone()
    }
}

impl<V: ViewAbstraction> fmt::Debug for ViewIndex<'_, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ViewIndex({}, universe of {})",
            self.abstraction.name(),
            self.universe.len()
        )
    }
}

/// One counterexample found by [`check_event_semantics`].
#[derive(Clone, Debug)]
pub struct SemanticsViolation {
    /// The computation before the event.
    pub x: CompId,
    /// The computation after the event (`x;e`).
    pub xe: CompId,
    /// Rendered description of the event and failure mode.
    pub description: String,
}

/// Checks Theorem 3's event semantics under an abstraction, for
/// knowledge of an arbitrary target set `sat` (e.g. a predicate's
/// satisfaction set): across every member pair `(x, (x;e))`,
///
/// * a receive must not grow `{y : x [P]ᵥ y}`-based knowledge loss …
///   concretely: internal events must neither gain nor lose
///   `P knows ⟨sat⟩` when `sat` is `P̄`-local-like; receives must not
///   lose it; sends must not gain it.
///
/// Under [`FullHistory`] this is Lemma 4 and never fires; under
/// forgetful abstractions it returns the concrete violations.
pub fn check_event_semantics<V: ViewAbstraction>(
    index: &ViewIndex<'_, V>,
    p: ProcessSet,
    sat: &CompSet,
) -> Vec<SemanticsViolation> {
    let universe = index.universe();
    let knows = index.knows_set(p, sat);
    let mut violations = Vec::new();
    for (xe_id, xe) in universe.iter() {
        let Some(e) = xe.events().last().copied() else {
            continue;
        };
        if !e.is_on_set(p) {
            continue;
        }
        let Some(x_id) = universe.id_of(&xe.prefix(xe.len() - 1)) else {
            continue;
        };
        let before = knows.contains(x_id.index());
        let after = knows.contains(xe_id.index());
        let failure = match e.kind() {
            EventKind::Receive { .. } if before && !after => Some("receive lost knowledge"),
            EventKind::Send { .. } if !before && after => Some("send gained knowledge"),
            EventKind::Internal { .. } if before != after => {
                Some("internal event changed knowledge")
            }
            _ => None,
        };
        if let Some(mode) = failure {
            violations.push(SemanticsViolation {
                x: x_id,
                xe: xe_id,
                description: format!("{mode} at {e}"),
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate, EnumerationLimits, LocalView, ProtoAction, Protocol};
    use crate::isomorphism::IsoIndex;
    use hpl_model::ActionId;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// p0 toggles a bit and reports to p1; p1 may do unrelated internal
    /// work (which under bounded memory overwrites what it learned).
    struct Chatter;

    impl Protocol for Chatter {
        fn system_size(&self) -> usize {
            2
        }
        fn actions(&self, p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
            match p.index() {
                0 if view.is_empty() => vec![
                    ProtoAction::Internal {
                        action: ActionId::new(1),
                    },
                    ProtoAction::Send {
                        to: pid(1),
                        payload: 7,
                    },
                ],
                1 if view.len() < 2 => vec![ProtoAction::Internal {
                    action: ActionId::new(9),
                }],
                _ => vec![],
            }
        }
    }

    fn setup() -> crate::enumerate::ProtocolUniverse {
        enumerate(&Chatter, EnumerationLimits::depth(4)).unwrap()
    }

    #[test]
    fn full_history_matches_standard_isomorphism() {
        let pu = setup();
        let u = pu.universe();
        let view = ViewIndex::new(u, FullHistory);
        let iso = IsoIndex::new(u);
        for p in [
            ProcessSet::singleton(pid(0)),
            ProcessSet::singleton(pid(1)),
            ProcessSet::full(2),
        ] {
            for x in u.ids() {
                for y in u.ids() {
                    assert_eq!(
                        view.isomorphic(x, y, p),
                        iso.isomorphic(x, y, p),
                        "full-history view must equal the paper's isomorphism"
                    );
                }
            }
        }
    }

    #[test]
    fn coarser_views_merge_classes() {
        let pu = setup();
        let u = pu.universe();
        let full = ViewIndex::new(u, FullHistory);
        let counts = ViewIndex::new(u, EventCounts);
        let p = ProcessSet::singleton(pid(0));
        // counting abstraction cannot distinguish *which* internal action
        // happened, only how many — classes can only merge
        for x in u.ids() {
            let fine = full.class_set(x, p);
            let coarse = counts.class_set(x, p);
            assert!(fine.is_subset(&coarse), "coarse classes contain fine ones");
        }
    }

    #[test]
    fn knowledge_facts_survive_any_abstraction() {
        // K: knows(sat) ⊆ sat (truth), idempotence of knows, monotone in
        // the set — these use only the equivalence structure.
        let pu = setup();
        let u = pu.universe();
        for (name, knows_fn) in [
            (
                "full",
                ViewIndex::new(u, FullHistory)
                    .knows_set(ProcessSet::singleton(pid(1)), &sent_sat(u)),
            ),
            (
                "bounded",
                ViewIndex::new(u, BoundedMemory { window: 1 })
                    .knows_set(ProcessSet::singleton(pid(1)), &sent_sat(u)),
            ),
            (
                "counts",
                ViewIndex::new(u, EventCounts)
                    .knows_set(ProcessSet::singleton(pid(1)), &sent_sat(u)),
            ),
        ] {
            // knowledge implies truth under every abstraction
            assert!(knows_fn.is_subset(&sent_sat(u)), "{name}: K ⊆ sat");
        }
        // positive introspection: knows(knows(sat)) == knows(sat)
        let view = ViewIndex::new(u, BoundedMemory { window: 1 });
        let p = ProcessSet::singleton(pid(1));
        let k1 = view.knows_set(p, &sent_sat(u));
        let k2 = view.knows_set(p, &k1);
        assert_eq!(k1, k2, "positive introspection survives forgetfulness");
    }

    fn sent_sat(u: &Universe) -> CompSet {
        let mut s = CompSet::new(u.len());
        for (id, c) in u.iter() {
            if c.sends() > 0 {
                s.insert(id.index());
            }
        }
        s
    }

    #[test]
    fn event_semantics_hold_for_full_history() {
        let pu = setup();
        let u = pu.universe();
        let view = ViewIndex::new(u, FullHistory);
        let violations = check_event_semantics(&view, ProcessSet::singleton(pid(1)), &sent_sat(u));
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn event_semantics_break_under_forgetting() {
        // the paper's boundary: with bounded memory, p1's unrelated
        // internal work *overwrites* the receive it learned from —
        // an internal event loses knowledge, impossible in the paper's
        // model (Lemma 4 case 3).
        let pu = setup();
        let u = pu.universe();
        let view = ViewIndex::new(u, BoundedMemory { window: 1 });
        let violations = check_event_semantics(&view, ProcessSet::singleton(pid(1)), &sent_sat(u));
        assert!(
            violations
                .iter()
                .any(|v| v.description.contains("internal event changed knowledge")),
            "expected a forgetting counterexample, got {violations:?}"
        );
    }

    #[test]
    fn debug_rendering() {
        let pu = setup();
        let view = ViewIndex::new(pu.universe(), EventCounts);
        assert!(format!("{view:?}").contains("event-counts"));
    }
}
