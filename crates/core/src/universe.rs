//! Finite universes of system computations.
//!
//! The paper's definitions quantify over all computations of one (generic)
//! distributed system. A [`Universe`] is the finite stand-in: a deduplicated,
//! consistency-checked collection of computations over a shared event
//! space. Knowledge and composed-isomorphism queries are evaluated
//! *relative to* a universe; enumerated protocol universes
//! ([`crate::enumerate::enumerate`]) contain every system computation up to a depth
//! bound and are additionally prefix closed.

use crate::bitset::CompSet;
use crate::error::CoreError;
use hpl_model::{Computation, Event, EventId, ProcessId};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Global source of universe generations: every mutation of any universe
/// draws a fresh value, so `(generation)` uniquely identifies a universe
/// *state* across the process (clones share the generation of the state
/// they copied — their contents are identical, so sharing derived caches
/// is sound).
static GENERATIONS: AtomicU64 = AtomicU64::new(0);

fn next_generation() -> u64 {
    GENERATIONS.fetch_add(1, Ordering::Relaxed)
}

/// Index of a computation within a [`Universe`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CompId(u32);

impl CompId {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    fn new(i: usize) -> Self {
        assert!(i <= u32::MAX as usize, "universe too large");
        CompId(i as u32)
    }

    /// Crate-internal reconstruction from a raw index (indices come from
    /// `CompSet` iteration, which only yields valid universe indices).
    pub(crate) fn from_index(i: usize) -> Self {
        CompId::new(i)
    }
}

impl fmt::Display for CompId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The id correspondence produced by growing a universe in place
/// ([`extend_sharded`](crate::extend_sharded)): for every member of the
/// source state (generation `from_generation`), the [`CompId`] it holds
/// in the grown state (generation `to_generation`). New computations
/// splice *between* surviving members in pre-order, so the map is
/// strictly increasing but not the identity; membership order of the old
/// members is preserved, which is what lets generation-keyed caches
/// rebuild incrementally ([`crate::isomorphism::ClassCache::note_growth`])
/// instead of from scratch.
#[derive(Clone, Debug)]
pub struct GrowthMap {
    from_generation: u64,
    to_generation: u64,
    /// `map[old.index()]` = raw index of the member in the grown state.
    map: Vec<u32>,
}

impl GrowthMap {
    pub(crate) fn new(from_generation: u64, to_generation: u64, map: Vec<u32>) -> Self {
        debug_assert!(
            map.windows(2).all(|w| w[0] < w[1]),
            "growth maps preserve member order"
        );
        GrowthMap {
            from_generation,
            to_generation,
            map,
        }
    }

    /// The generation of the universe state the frontier was captured
    /// from.
    #[must_use]
    pub fn from_generation(&self) -> u64 {
        self.from_generation
    }

    /// The generation of the grown universe state.
    #[must_use]
    pub fn to_generation(&self) -> u64 {
        self.to_generation
    }

    /// Number of members of the source state (all of which survive).
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if the source state had no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The id an old member holds in the grown universe.
    ///
    /// # Panics
    ///
    /// Panics if `old` is not a member of the source state.
    #[must_use]
    pub fn new_id_of(&self, old: CompId) -> CompId {
        CompId(self.map[old.index()])
    }

    /// All `(old id, new id)` pairs, in old-member order.
    pub fn iter(&self) -> impl Iterator<Item = (CompId, CompId)> + '_ {
        self.map
            .iter()
            .enumerate()
            .map(|(old, &new)| (CompId::new(old), CompId(new)))
    }

    /// The raw old-index → new-index table.
    #[must_use]
    pub(crate) fn raw(&self) -> &[u32] {
        &self.map
    }
}

/// A finite, deduplicated set of computations over a shared event space.
///
/// Insertion enforces the paper's "all events are distinguished"
/// convention: the same [`EventId`] must denote the same event (process
/// and kind) in every member computation.
///
/// # Example
///
/// ```
/// use hpl_core::Universe;
/// use hpl_model::{ProcessId, ScenarioPool};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = ProcessId::new(0);
/// let mut pool = ScenarioPool::new(1);
/// let a = pool.internal(p);
///
/// let mut u = Universe::new(1);
/// let c0 = u.insert(pool.compose([])?)?;
/// let c1 = u.insert(pool.compose([a])?)?;
/// assert_eq!(u.len(), 2);
/// assert!(u.get(c0).is_prefix_of(u.get(c1)));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Universe {
    system_size: usize,
    computations: Vec<Computation>,
    by_ids: HashMap<Vec<EventId>, CompId>,
    event_registry: HashMap<EventId, Event>,
    generation: u64,
}

impl Universe {
    /// Creates an empty universe for a system of `system_size` processes.
    #[must_use]
    pub fn new(system_size: usize) -> Self {
        Universe {
            system_size,
            computations: Vec::new(),
            by_ids: HashMap::new(),
            event_registry: HashMap::new(),
            generation: next_generation(),
        }
    }

    /// The generation of this universe's current state: changes on every
    /// mutation, and is unique across universes except for clones of the
    /// same (content-identical) state. Caches derived purely from the
    /// membership — e.g. the shared `[P]`-partition cache
    /// ([`crate::isomorphism::ClassCache`]) — key on it.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Builds a universe from an iterator of computations.
    ///
    /// # Errors
    ///
    /// Returns an error on system-size mismatch or event inconsistency.
    pub fn from_computations<I: IntoIterator<Item = Computation>>(
        system_size: usize,
        computations: I,
    ) -> Result<Self, CoreError> {
        let mut u = Universe::new(system_size);
        for c in computations {
            u.insert(c)?;
        }
        Ok(u)
    }

    /// Number of processes of the (single, generic) system.
    #[must_use]
    pub fn system_size(&self) -> usize {
        self.system_size
    }

    /// Number of member computations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.computations.len()
    }

    /// Returns `true` if the universe has no computations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.computations.is_empty()
    }

    /// Inserts a computation, returning its id. Duplicate insertions (same
    /// event sequence) return the existing id.
    ///
    /// # Errors
    ///
    /// Returns an error if the computation's system size differs from the
    /// universe's, or if any event id is already bound to a different
    /// event.
    pub fn insert(&mut self, c: Computation) -> Result<CompId, CoreError> {
        if c.system_size() != self.system_size {
            return Err(CoreError::SystemSizeMismatch {
                expected: self.system_size,
                found: c.system_size(),
            });
        }
        // Consistency first: the same id must always denote the same event,
        // even for computations that would dedup to an existing member.
        for e in c.iter() {
            if let Some(known) = self.event_registry.get(&e.id()) {
                if *known != e {
                    return Err(CoreError::InconsistentEvent { event: e.id() });
                }
            }
        }
        let key: Vec<EventId> = c.iter().map(|e| e.id()).collect();
        if let Some(&id) = self.by_ids.get(&key) {
            return Ok(id);
        }
        for e in c.iter() {
            self.event_registry.entry(e.id()).or_insert(e);
        }
        let id = CompId::new(self.computations.len());
        self.by_ids.insert(key, id);
        self.computations.push(c);
        self.generation = next_generation();
        Ok(id)
    }

    /// Crate-internal fast-path insertion for enumeration engines: the
    /// caller guarantees the computation has the right system size, is
    /// consistent with the shared event space, and is **not** already a
    /// member. Skips the per-event consistency scan and the duplicate
    /// probe; the event registry is populated separately via
    /// [`Universe::register_events`].
    ///
    /// Unlike [`Universe::insert`], this does **not** draw a fresh
    /// generation per call (a streaming merge performs one trusted
    /// insert per kept node; the universe is private to the engine until
    /// it finishes). The engine must call
    /// [`Universe::commit_generation`] once before exposing the result.
    pub(crate) fn insert_trusted(&mut self, c: Computation) -> CompId {
        debug_assert_eq!(c.system_size(), self.system_size, "system size mismatch");
        let key: Vec<EventId> = c.iter().map(|e| e.id()).collect();
        debug_assert!(
            !self.by_ids.contains_key(&key),
            "insert_trusted given a duplicate computation"
        );
        let id = CompId::new(self.computations.len());
        self.by_ids.insert(key, id);
        self.computations.push(c);
        id
    }

    /// Crate-internal: grows the member and id tables toward a forecast
    /// final count (monotone; a no-op once capacity suffices). Streaming
    /// enumeration engines call this with the live explored counter so
    /// the id table stops rehashing long before the merge catches up.
    pub(crate) fn reserve_to(&mut self, target: usize) {
        if let Some(add) = target.checked_sub(self.computations.len()) {
            self.computations.reserve(add);
            self.by_ids.reserve(add);
        }
    }

    /// Crate-internal: draws one fresh generation for the batch of
    /// trusted mutations performed since construction — the deferred
    /// counterpart of the per-call bump in [`Universe::insert`], so
    /// generation-keyed caches ([`crate::isomorphism::ClassCache`]) see
    /// exactly one state per enumeration instead of one per node.
    pub(crate) fn commit_generation(&mut self) {
        self.generation = next_generation();
    }

    /// Crate-internal bulk registration of the shared event space backing
    /// trusted insertions.
    pub(crate) fn register_events<I: IntoIterator<Item = Event>>(&mut self, events: I) {
        for e in events {
            self.event_registry.entry(e.id()).or_insert(e);
        }
    }

    /// The computation with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this universe.
    #[must_use]
    pub fn get(&self, id: CompId) -> &Computation {
        &self.computations[id.index()]
    }

    /// Looks up the id of a computation by value.
    #[must_use]
    pub fn id_of(&self, c: &Computation) -> Option<CompId> {
        let key: Vec<EventId> = c.iter().map(|e| e.id()).collect();
        self.by_ids.get(&key).copied()
    }

    /// Iterates over `(id, computation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CompId, &Computation)> {
        self.computations
            .iter()
            .enumerate()
            .map(|(i, c)| (CompId::new(i), c))
    }

    /// All ids, in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = CompId> + use<> {
        (0..self.computations.len()).map(CompId::new)
    }

    /// An empty [`CompSet`] sized for this universe.
    #[must_use]
    pub fn empty_set(&self) -> CompSet {
        CompSet::new(self.len())
    }

    /// The full [`CompSet`] over this universe.
    #[must_use]
    pub fn full_set(&self) -> CompSet {
        CompSet::full(self.len())
    }

    /// Ensures every prefix of every member is itself a member, inserting
    /// missing prefixes (system computations are prefix closed, paper §2).
    ///
    /// Returns the number of computations added.
    pub fn close_under_prefixes(&mut self) -> usize {
        let mut added = 0;
        let mut i = 0;
        while i < self.computations.len() {
            let c = self.computations[i].clone();
            for l in 0..c.len() {
                let p = c.prefix(l);
                let key: Vec<EventId> = p.iter().map(|e| e.id()).collect();
                if !self.by_ids.contains_key(&key) {
                    let id = CompId::new(self.computations.len());
                    self.by_ids.insert(key, id);
                    self.computations.push(p);
                    added += 1;
                }
            }
            i += 1;
        }
        if added > 0 {
            self.generation = next_generation();
        }
        added
    }

    /// Returns `true` if every prefix of every member is a member.
    #[must_use]
    pub fn is_prefix_closed(&self) -> bool {
        self.computations.iter().all(|c| {
            (0..c.len()).all(|l| {
                let key: Vec<EventId> = c.iter().take(l).map(|e| e.id()).collect();
                self.by_ids.contains_key(&key)
            })
        })
    }

    /// All ordered pairs `(x, y)` with `x ≤ y` (`x` a prefix of `y`),
    /// including `x = y`.
    #[must_use]
    pub fn prefix_pairs(&self) -> Vec<(CompId, CompId)> {
        let mut out = Vec::new();
        for (i, x) in self.iter() {
            for (j, y) in self.iter() {
                if x.is_prefix_of(y) {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// The event bound to `id` in this universe's shared event space.
    #[must_use]
    pub fn event(&self, id: EventId) -> Option<Event> {
        self.event_registry.get(&id).copied()
    }

    /// The projection signature of computation `id` on process `p`,
    /// as the sequence of event ids (the datum isomorphism compares).
    #[must_use]
    pub fn projection_ids(&self, id: CompId, p: ProcessId) -> Vec<EventId> {
        self.get(id).projection_ids(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_model::{ComputationBuilder, ScenarioPool};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn insert_dedup_and_lookup() {
        let mut pool = ScenarioPool::new(2);
        let a = pool.internal(pid(0));
        let b = pool.internal(pid(1));
        let mut u = Universe::new(2);
        let c1 = u.insert(pool.compose([a, b]).unwrap()).unwrap();
        let c2 = u.insert(pool.compose([a, b]).unwrap()).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(u.len(), 1);
        assert_eq!(u.id_of(&pool.compose([a, b]).unwrap()), Some(c1));
        assert_eq!(u.id_of(&pool.compose([b, a]).unwrap()), None);
    }

    #[test]
    fn system_size_mismatch_rejected() {
        let mut u = Universe::new(2);
        let c = Computation::empty(3);
        assert!(matches!(
            u.insert(c).unwrap_err(),
            CoreError::SystemSizeMismatch {
                expected: 2,
                found: 3
            }
        ));
    }

    #[test]
    fn inconsistent_event_rejected() {
        // Two builders both allocate event id 0 for different events.
        let mut b1 = ComputationBuilder::new(2);
        b1.internal(pid(0)).unwrap();
        let mut b2 = ComputationBuilder::new(2);
        b2.internal(pid(1)).unwrap();

        let mut u = Universe::new(2);
        u.insert(b1.finish()).unwrap();
        assert!(matches!(
            u.insert(b2.finish()).unwrap_err(),
            CoreError::InconsistentEvent { .. }
        ));
    }

    #[test]
    fn prefix_closure() {
        let mut b = ComputationBuilder::new(2);
        let m = b.send(pid(0), pid(1)).unwrap();
        b.receive(pid(1), m).unwrap();
        let z = b.finish();

        let mut u = Universe::new(2);
        u.insert(z).unwrap();
        assert!(!u.is_prefix_closed());
        let added = u.close_under_prefixes();
        assert_eq!(added, 2); // null and the 1-event prefix
        assert!(u.is_prefix_closed());
        assert_eq!(u.len(), 3);
        // idempotent
        assert_eq!(u.close_under_prefixes(), 0);
    }

    #[test]
    fn prefix_pairs_enumeration() {
        let mut b = ComputationBuilder::new(1);
        b.internal(pid(0)).unwrap();
        b.internal(pid(0)).unwrap();
        let z = b.finish();
        let mut u = Universe::new(1);
        u.insert(z).unwrap();
        u.close_under_prefixes();
        // 3 computations: null ≤ e0 ≤ e0e1 → pairs: (n,n),(n,1),(n,2),(1,1),(1,2),(2,2)
        assert_eq!(u.prefix_pairs().len(), 6);
    }

    #[test]
    fn event_registry() {
        let mut pool = ScenarioPool::new(2);
        let a = pool.internal(pid(0));
        let mut u = Universe::new(2);
        u.insert(pool.compose([a]).unwrap()).unwrap();
        assert!(u.event(a).is_some());
        assert_eq!(u.event(EventId::new(55)), None);
    }

    #[test]
    fn sets_are_sized_to_universe() {
        let mut pool = ScenarioPool::new(1);
        let a = pool.internal(pid(0));
        let mut u = Universe::new(1);
        u.insert(pool.compose([]).unwrap()).unwrap();
        u.insert(pool.compose([a]).unwrap()).unwrap();
        assert_eq!(u.empty_set().capacity(), 2);
        assert_eq!(u.full_set().count(), 2);
        assert_eq!(u.ids().count(), 2);
    }
}
