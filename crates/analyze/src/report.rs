//! Findings and the machine-readable analysis report.

use std::fmt;

/// Which of the three analysis passes produced a finding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pass {
    /// The determinism lint over workspace sources.
    Determinism,
    /// The protocol-contract audit over registered protocols.
    Contract,
    /// The lock-graph checker over annotated lock sites.
    LockGraph,
}

impl Pass {
    /// The stable identifier used in reports and CI logs.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Pass::Determinism => "determinism",
            Pass::Contract => "contract",
            Pass::LockGraph => "lock-graph",
        }
    }
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One analysis finding: a rule violation at a source location (or, for
/// contract findings, at a protocol/atom identified in `file`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// The producing pass.
    pub pass: Pass,
    /// Stable rule identifier (e.g. `wall-clock`, `lock-cycle`). Tests
    /// and waiver comments name rules by this id.
    pub rule: &'static str,
    /// Source path relative to the analysis root, or a logical location
    /// (`protocol:<name>`) for contract findings.
    pub file: String,
    /// 1-based line, `0` when the finding has no line (contract audit).
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(
                f,
                "[{}] {} — {}: {}",
                self.pass, self.rule, self.file, self.message
            )
        } else {
            write!(
                f,
                "[{}] {} — {}:{}: {}",
                self.pass, self.rule, self.file, self.line, self.message
            )
        }
    }
}

/// The aggregate result of an analysis run.
#[derive(Clone, Debug, Default)]
pub struct AnalysisReport {
    /// Rule violations that survived waivers and allowlists.
    pub findings: Vec<Finding>,
    /// Inline waivers that suppressed a finding, as
    /// `(file, line, rule, reason)` — reported so suppressions stay
    /// visible instead of silent.
    pub waivers_used: Vec<(String, usize, String, String)>,
    /// Number of source files scanned by the lexical passes.
    pub files_scanned: usize,
    /// Number of protocols audited by the contract pass.
    pub protocols_audited: usize,
}

impl AnalysisReport {
    /// Merges another report into this one.
    pub fn merge(&mut self, other: AnalysisReport) {
        self.findings.extend(other.findings);
        self.waivers_used.extend(other.waivers_used);
        self.files_scanned += other.files_scanned;
        self.protocols_audited += other.protocols_audited;
    }

    /// `true` when no finding survived.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings of one rule (test helper).
    #[must_use]
    pub fn of_rule(&self, rule: &str) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.rule == rule).collect()
    }

    /// The report as JSON (schema `hpl-analyze-report/v1`): findings,
    /// waivers-in-effect and scan counts. Hand-rolled like the bench
    /// report — the workspace is offline, so no serde.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"hpl-analyze-report/v1\",\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"protocols_audited\": {},\n",
            self.protocols_audited
        ));
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"pass\": \"{}\", \"rule\": \"{}\", \"file\": \"{}\", \
                 \"line\": {}, \"message\": \"{}\"}}",
                f.pass,
                f.rule,
                escape(&f.file),
                f.line,
                escape(&f.message)
            ));
            out.push_str(if i + 1 < self.findings.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"waivers\": [\n");
        for (i, (file, line, rule, reason)) in self.waivers_used.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": \"{}\", \"line\": {line}, \"rule\": \"{}\", \
                 \"reason\": \"{}\"}}",
                escape(file),
                escape(rule),
                escape(reason)
            ));
            out.push_str(if i + 1 < self.waivers_used.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let mut r = AnalysisReport::default();
        r.findings.push(Finding {
            pass: Pass::Determinism,
            rule: "wall-clock",
            file: "a\"b.rs".to_owned(),
            line: 3,
            message: "uses\nInstant".to_owned(),
        });
        r.files_scanned = 2;
        let json = r.to_json();
        assert!(json.contains("\\\"b.rs"));
        assert!(json.contains("uses\\nInstant"));
        assert!(json.contains("\"files_scanned\": 2"));
        assert!(!r.clean());
        assert_eq!(r.of_rule("wall-clock").len(), 1);
    }
}
