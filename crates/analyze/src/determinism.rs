//! The determinism lint: banned constructs in deterministic code.
//!
//! The engine's headline guarantees — byte-identical merges across
//! shard counts, seed-coupled fault sweeps, replayable frontiers — hold
//! only if the code paths that produce them are deterministic. This
//! pass bans the constructs that silently break that, scoped by
//! `analysis.toml`:
//!
//! | rule | fires on | scope |
//! |------|----------|-------|
//! | `nondet-iteration` | iterating a `HashMap`/`HashSet` binding | declared deterministic regions |
//! | `wall-clock` | `Instant::now` / `SystemTime` | everywhere except `clock_exempt` |
//! | `thread-spawn` | `thread::spawn` / `thread::scope` | everywhere except `scheduler_modules` |
//! | `unseeded-rng` | `thread_rng`, `from_entropy`, `OsRng`, `rand::random` | everywhere |
//! | `unwrap-hot-path` | `.unwrap()` in library code | declared hot paths |
//! | `waiver-missing-reason` | `analyze:allow(rule)` with no reason | everywhere |
//!
//! All rules skip `#[cfg(test)]` code — tests may time, spawn, and
//! unwrap freely. Inline waivers (`// analyze:allow(rule) reason`) on
//! the offending line or the line above suppress a finding and are
//! echoed in the report.

use crate::config::AnalysisConfig;
use crate::report::{AnalysisReport, Finding, Pass};
use crate::source::{Directive, SourceFile};

/// Runs the determinism lint over lexed files.
#[must_use]
pub fn lint(files: &[SourceFile], cfg: &AnalysisConfig) -> AnalysisReport {
    let mut report = AnalysisReport {
        files_scanned: files.len(),
        ..AnalysisReport::default()
    };
    for file in files {
        lint_file(file, cfg, &mut report);
    }
    report
}

fn lint_file(file: &SourceFile, cfg: &AnalysisConfig, report: &mut AnalysisReport) {
    let in_region = AnalysisConfig::under(&file.path, &cfg.regions);
    let in_hot = AnalysisConfig::under(&file.path, &cfg.hot_paths);
    let clock_ok = AnalysisConfig::under(&file.path, &cfg.clock_exempt);
    let sched_ok = AnalysisConfig::under(&file.path, &cfg.scheduler_modules);
    let hashy = if in_region {
        hash_bindings(file)
    } else {
        Vec::new()
    };

    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        // waiver hygiene applies everywhere, test code included
        for d in file.directives(lineno) {
            if let Directive::Allow { rule, reason } = d {
                if reason.is_empty() {
                    report.findings.push(Finding {
                        pass: Pass::Determinism,
                        rule: "waiver-missing-reason",
                        file: file.path.clone(),
                        line: lineno,
                        message: format!(
                            "analyze:allow({rule}) carries no reason — waivers must say why"
                        ),
                    });
                }
            }
        }
        if line.in_test {
            continue;
        }
        let code = line.code.as_str();

        if !clock_ok {
            for tok in ["Instant::now", "SystemTime"] {
                if has_token(code, tok) {
                    emit(
                        report,
                        file,
                        cfg,
                        "wall-clock",
                        lineno,
                        format!("`{tok}` outside a clock-exempt module"),
                    );
                    break;
                }
            }
        }
        if !sched_ok {
            for tok in ["thread::spawn", "thread::scope", "thread::Builder"] {
                if has_token(code, tok) {
                    emit(
                        report,
                        file,
                        cfg,
                        "thread-spawn",
                        lineno,
                        format!("`{tok}` outside a sanctioned scheduler module"),
                    );
                    break;
                }
            }
        }
        for tok in ["thread_rng", "from_entropy", "OsRng", "rand::random"] {
            if has_token(code, tok) {
                emit(
                    report,
                    file,
                    cfg,
                    "unseeded-rng",
                    lineno,
                    format!("`{tok}` draws entropy outside seed control"),
                );
                break;
            }
        }
        if in_hot && code.contains(".unwrap()") {
            emit(
                report,
                file,
                cfg,
                "unwrap-hot-path",
                lineno,
                "`.unwrap()` in a library hot path — use a typed error or an \
                 invariant-documented `.expect(..)`"
                    .to_owned(),
            );
        }
        if in_region {
            for name in &hashy {
                if iterates(code, name) {
                    emit(
                        report,
                        file,
                        cfg,
                        "nondet-iteration",
                        lineno,
                        format!(
                            "iteration over hash-ordered `{name}` inside a declared \
                             deterministic region — sort or use an ordered container"
                        ),
                    );
                    break;
                }
            }
        }
    }
}

/// Pushes a finding unless it is allowlisted for the file or waived
/// inline (waivers are echoed into the report).
fn emit(
    report: &mut AnalysisReport,
    file: &SourceFile,
    cfg: &AnalysisConfig,
    rule: &'static str,
    line: usize,
    message: String,
) {
    if cfg.allows(&file.path, rule) {
        return;
    }
    if let Some((at, reason)) = file.waiver(line, rule) {
        report
            .waivers_used
            .push((file.path.clone(), at, rule.to_owned(), reason));
        return;
    }
    report.findings.push(Finding {
        pass: Pass::Determinism,
        rule,
        file: file.path.clone(),
        line,
        message,
    });
}

/// Names bound to `HashMap`/`HashSet` values anywhere in the file's
/// non-test code: `let x = HashMap::new()`, `let x: HashMap<..>`, and
/// struct fields / params `x: HashMap<..>`.
fn hash_bindings(file: &SourceFile) -> Vec<String> {
    let mut names = Vec::new();
    for line in &file.lines {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        for ty in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(at) = code[from..].find(ty) {
                let at = from + at;
                from = at + ty.len();
                if !token_boundary(code, at, ty.len()) {
                    continue;
                }
                if let Some(name) = binding_before(&code[..at]) {
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
            }
        }
    }
    names
}

/// Extracts the bound name from the code preceding a `HashMap`/`HashSet`
/// token: `… let mut name = ` or `… name: ` (field, param, annotation).
fn binding_before(prefix: &str) -> Option<String> {
    let trimmed = prefix.trim_end();
    // `name: HashMap<..>` or `let name: HashMap<..>`
    if let Some(before_colon) = trimmed.strip_suffix(':') {
        let name = last_ident(before_colon)?;
        return Some(name);
    }
    // `let name = HashMap::new()` — allow `=`, `&`, `&mut` in between
    let no_amp = trimmed
        .trim_end_matches("&mut")
        .trim_end_matches('&')
        .trim_end();
    if let Some(before_eq) = no_amp.strip_suffix('=') {
        let before_eq = before_eq.trim_end();
        let name = last_ident(before_eq)?;
        return Some(name);
    }
    None
}

fn last_ident(s: &str) -> Option<String> {
    let name: String = s
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    (!name.is_empty() && !name.chars().next().is_some_and(|c| c.is_ascii_digit())).then_some(name)
}

/// Whether `code` iterates the binding `name` (ordered-output hazard).
fn iterates(code: &str, name: &str) -> bool {
    for call in [".iter()", ".keys()", ".values()", ".drain(", ".into_iter()"] {
        let pat = format!("{name}{call}");
        if find_token_prefixed(code, &pat, name.len()) {
            return true;
        }
    }
    for pat in [
        format!("in {name}"),
        format!("in &{name}"),
        format!("in &mut {name}"),
    ] {
        let mut from = 0;
        while let Some(at) = code[from..].find(&pat) {
            let at = from + at;
            from = at + pat.len();
            // `in` must be its own word and the name must end at a boundary
            let pre_ok = at == 0 || !is_word(code.as_bytes()[at - 1] as char);
            let post_ok = code[at + pat.len()..]
                .chars()
                .next()
                .is_none_or(|c| !is_word(c));
            if pre_ok && post_ok {
                return true;
            }
        }
    }
    false
}

/// Finds `pat` (an identifier of length `ident_len` followed by a call)
/// at an identifier boundary.
fn find_token_prefixed(code: &str, pat: &str, ident_len: usize) -> bool {
    let mut from = 0;
    while let Some(at) = code[from..].find(pat) {
        let at = from + at;
        from = at + pat.len();
        if token_boundary(code, at, ident_len) {
            return true;
        }
    }
    false
}

/// Whether `code` contains `tok` delimited by non-identifier chars.
fn has_token(code: &str, tok: &str) -> bool {
    let mut from = 0;
    while let Some(at) = code[from..].find(tok) {
        let at = from + at;
        from = at + tok.len();
        if token_boundary(code, at, tok.len()) {
            return true;
        }
    }
    false
}

fn token_boundary(code: &str, at: usize, len: usize) -> bool {
    let pre_ok = at == 0 || !is_word(code.as_bytes()[at - 1] as char);
    let post_ok = code[at + len..].chars().next().is_none_or(|c| !is_word(c));
    pre_ok && post_ok
}

fn is_word(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_all(path: &str) -> AnalysisConfig {
        AnalysisConfig {
            regions: vec![path.to_owned()],
            hot_paths: vec![path.to_owned()],
            ..AnalysisConfig::default()
        }
    }

    fn run(src: &str) -> AnalysisReport {
        let f = SourceFile::parse("x.rs", src);
        lint(&[f], &cfg_all("x.rs"))
    }

    #[test]
    fn flags_hash_iteration_in_region() {
        let r = run("fn f() {\n    let mut seen = HashMap::new();\n    for (k, v) in &seen { use_it(k, v); }\n}\n");
        assert_eq!(r.of_rule("nondet-iteration").len(), 1);
        assert_eq!(r.of_rule("nondet-iteration")[0].line, 3);
    }

    #[test]
    fn flags_clock_spawn_rng_unwrap() {
        let r = run(
            "fn f() {\n    let t = Instant::now();\n    thread::spawn(|| {});\n    let r = thread_rng();\n    let v = x.lock().unwrap();\n}\n",
        );
        assert_eq!(r.of_rule("wall-clock").len(), 1);
        assert_eq!(r.of_rule("thread-spawn").len(), 1);
        assert_eq!(r.of_rule("unseeded-rng").len(), 1);
        assert_eq!(r.of_rule("unwrap-hot-path").len(), 1);
    }

    #[test]
    fn test_code_and_strings_are_exempt() {
        let r = run(
            "fn f() { let s = \"Instant::now\"; }\n#[cfg(test)]\nmod tests {\n    fn t() { let t = Instant::now(); x.unwrap(); }\n}\n",
        );
        assert!(r.clean(), "unexpected findings: {:?}", r.findings);
    }

    #[test]
    fn waiver_with_reason_suppresses_and_is_reported() {
        let r = run("fn f() {\n    // analyze:allow(wall-clock) stall diagnostics only\n    let t = Instant::now();\n}\n");
        assert!(r.of_rule("wall-clock").is_empty());
        assert_eq!(r.waivers_used.len(), 1);
        assert_eq!(r.waivers_used[0].2, "wall-clock");
    }

    #[test]
    fn waiver_without_reason_is_a_finding() {
        let r = run("fn f() {\n    let t = Instant::now(); // analyze:allow(wall-clock)\n}\n");
        assert_eq!(r.of_rule("waiver-missing-reason").len(), 1);
        assert_eq!(
            r.of_rule("wall-clock").len(),
            1,
            "reasonless waiver must not suppress"
        );
    }

    #[test]
    fn allowlist_suppresses_silently() {
        let f = SourceFile::parse("x.rs", "fn f() { let t = Instant::now(); }\n");
        let mut cfg = cfg_all("x.rs");
        cfg.allow
            .insert("x.rs".to_owned(), vec!["wall-clock".to_owned()]);
        let r = lint(&[f], &cfg);
        assert!(r.clean());
        assert!(r.waivers_used.is_empty());
    }
}
