//! `analysis.toml` — the committed rule configuration.
//!
//! The workspace is offline (no serde/toml crates), so this module
//! parses the small TOML subset the config actually uses: `[section]`
//! headers, `key = "string"`, `key = true|false`, and arrays of strings
//! (single- or multi-line). Keys may be quoted (per-file allowlist
//! entries are paths).

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// A parse failure, with the offending line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConfigError {
    /// 1-based line number in the config file.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "analysis.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// The analysis configuration: scan scope, per-rule module lists, and
/// per-file rule allowlists.
#[derive(Clone, Debug)]
pub struct AnalysisConfig {
    /// Directories (relative to the analysis root) whose `.rs` files the
    /// lexical passes scan. `target` and `vendor` segments are always
    /// skipped.
    pub scan_roots: Vec<String>,
    /// Declared deterministic regions: files whose enumeration output
    /// must be byte-identical, where hash-order iteration is banned.
    pub regions: Vec<String>,
    /// Library paths whose non-test code must not call `.unwrap()`.
    pub hot_paths: Vec<String>,
    /// Path prefixes allowed to read wall clocks (`Instant::now`,
    /// `SystemTime`).
    pub clock_exempt: Vec<String>,
    /// Path prefixes allowed to spawn threads (sanctioned schedulers).
    pub scheduler_modules: Vec<String>,
    /// Whether the protocol-contract audit runs (the repo config turns
    /// it on; fixture configs leave it off).
    pub audit_protocols: bool,
    /// Per-file rule allowlists: findings of a listed rule in that file
    /// are suppressed wholesale. Prefer inline waivers, which carry a
    /// reason and a line.
    pub allow: BTreeMap<String, Vec<String>>,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            scan_roots: vec!["crates".to_owned()],
            regions: Vec::new(),
            hot_paths: Vec::new(),
            clock_exempt: Vec::new(),
            scheduler_modules: Vec::new(),
            audit_protocols: false,
            allow: BTreeMap::new(),
        }
    }
}

impl AnalysisConfig {
    /// Loads and parses a config file.
    ///
    /// # Errors
    ///
    /// I/O failures and [`ConfigError`]s, boxed.
    pub fn load(path: &Path) -> Result<Self, Box<dyn std::error::Error>> {
        let raw = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Ok(Self::parse(&raw)?)
    }

    /// Parses config text.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] naming the first malformed line.
    pub fn parse(raw: &str) -> Result<Self, ConfigError> {
        let mut cfg = AnalysisConfig::default();
        let mut section = String::new();
        let mut lines = raw.lines().enumerate().peekable();
        while let Some((i, line)) = lines.next() {
            let lineno = i + 1;
            let line = strip_comment(line).trim().to_owned();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = name.trim().to_owned();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let key = unquote(key.trim());
            let mut value = value.trim().to_owned();
            // multi-line array: accumulate until the closing bracket
            if value.starts_with('[') && !value.ends_with(']') {
                for (_, next) in lines.by_ref() {
                    let next = strip_comment(next);
                    value.push_str(next.trim());
                    if next.trim_end().ends_with(']') {
                        break;
                    }
                }
                if !value.ends_with(']') {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unterminated array for key `{key}`"),
                    });
                }
            }
            cfg.assign(&section, &key, &value, lineno)?;
        }
        Ok(cfg)
    }

    fn assign(
        &mut self,
        section: &str,
        key: &str,
        value: &str,
        line: usize,
    ) -> Result<(), ConfigError> {
        let err = |message: String| ConfigError { line, message };
        match (section, key) {
            ("scan", "roots") => self.scan_roots = parse_string_array(value, line)?,
            ("determinism", "regions") => self.regions = parse_string_array(value, line)?,
            ("determinism", "hot_paths") => self.hot_paths = parse_string_array(value, line)?,
            ("determinism", "clock_exempt") => {
                self.clock_exempt = parse_string_array(value, line)?;
            }
            ("determinism", "scheduler_modules") => {
                self.scheduler_modules = parse_string_array(value, line)?;
            }
            ("contract", "audit_protocols") => {
                self.audit_protocols = match value {
                    "true" => true,
                    "false" => false,
                    other => return Err(err(format!("expected true/false, got `{other}`"))),
                };
            }
            ("allow", file) => {
                self.allow
                    .insert(file.to_owned(), parse_string_array(value, line)?);
            }
            _ => {
                return Err(err(format!("unknown key `{key}` in section `[{section}]`")));
            }
        }
        Ok(())
    }

    /// Whether `rule` findings in `file` are allowlisted.
    #[must_use]
    pub fn allows(&self, file: &str, rule: &str) -> bool {
        self.allow
            .get(file)
            .is_some_and(|rules| rules.iter().any(|r| r == rule))
    }

    /// Whether `file` (root-relative, `/`-separated) lies under any of
    /// the given path prefixes.
    #[must_use]
    pub fn under(file: &str, prefixes: &[String]) -> bool {
        prefixes.iter().any(|p| {
            let p = p.trim_end_matches('/');
            file == p || file.starts_with(&format!("{p}/"))
        })
    }
}

/// Strips a `#`-comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unquote(s: &str) -> String {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or(s)
        .to_owned()
}

fn parse_string_array(value: &str, line: usize) -> Result<Vec<String>, ConfigError> {
    let inner = value
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| ConfigError {
            line,
            message: format!("expected a [\"…\"] array, got `{value}`"),
        })?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        if !(item.starts_with('"') && item.ends_with('"') && item.len() >= 2) {
            return Err(ConfigError {
                line,
                message: format!("array items must be quoted strings, got `{item}`"),
            });
        }
        out.push(unquote(item));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_repo_shaped_config() {
        let cfg = AnalysisConfig::parse(
            r#"
# comment
[scan]
roots = ["crates"]

[determinism]
regions = [
    "crates/core/src/parallel.rs", # trailing comment
    "crates/core/src/fault_universe.rs",
]
hot_paths = ["crates/core/src", "crates/runtime/src"]
clock_exempt = ["crates/telemetry"]
scheduler_modules = []

[contract]
audit_protocols = true

[allow]
"crates/core/src/x.rs" = ["wall-clock"]
"#,
        )
        .expect("parses");
        assert_eq!(cfg.regions.len(), 2);
        assert_eq!(cfg.hot_paths.len(), 2);
        assert!(cfg.audit_protocols);
        assert!(cfg.allows("crates/core/src/x.rs", "wall-clock"));
        assert!(!cfg.allows("crates/core/src/x.rs", "thread-spawn"));
        assert!(AnalysisConfig::under(
            "crates/core/src/parallel.rs",
            &cfg.regions
        ));
        assert!(AnalysisConfig::under(
            "crates/core/src/eval.rs",
            &cfg.hot_paths
        ));
        assert!(!AnalysisConfig::under(
            "crates/model/src/id.rs",
            &cfg.hot_paths
        ));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(AnalysisConfig::parse("[scan]\nroots = nope").is_err());
        assert!(AnalysisConfig::parse("[bogus]\nkey = true").is_err());
        assert!(AnalysisConfig::parse("just words").is_err());
        assert!(AnalysisConfig::parse("[scan]\nroots = [\"a\"").is_err());
    }
}
