//! The lock-graph checker over annotated lock sites.
//!
//! The workspace's concurrency is hand-rolled (a credit-scheme reorder
//! gate, a `JobSlot`, leader/follower admission, worker loops over
//! mutex-wrapped receivers), so no lock-ordering discipline is enforced
//! by a library. Instead, every acquisition site carries an annotation:
//!
//! * `// analyze:acquire(name)` — a lock named `name` is taken here and
//!   held until `analyze:release(name)` or the end of the function.
//! * `// analyze:release(name)` — the lock is dropped early (e.g. an
//!   explicit `drop(guard)` before a send).
//! * `// analyze:blocking(name)` — a blocking channel/condvar operation
//!   on `name` (recv, condvar wait with a *different* lock held, …).
//!
//! From these the checker builds a global acquisition-order graph (an
//! edge `a → b` for every site taking `b` while holding `a`) and fails
//! on:
//!
//! * `lock-cycle` — a cycle in the acquisition graph (deadlock
//!   potential between two interleaved call paths);
//! * `lock-across-blocking` — a blocking op executed while any lock is
//!   held (a classic lost-wakeup / starvation shape). Intentional
//!   designs (a mutex serving as the consume token for a
//!   single-consumer channel) take an inline waiver with a reason.
//! * `unmatched-release` — a release of a lock that is not held,
//!   which usually means the annotations drifted from the code.
//!
//! The analysis is per-function and flow-insensitive (annotations in
//! source order); held sets reset at function end — scope-exit drops
//! need no annotation.

use crate::config::AnalysisConfig;
use crate::report::{AnalysisReport, Finding, Pass};
use crate::source::{Directive, SourceFile};
use std::collections::BTreeMap;

/// One acquisition-order edge with the site that witnessed it.
#[derive(Clone, Debug)]
struct Edge {
    to: String,
    file: String,
    line: usize,
}

/// Runs the lock-graph checker over lexed files.
#[must_use]
pub fn check(files: &[SourceFile], cfg: &AnalysisConfig) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    // acquisition-order edges: held lock -> locks taken under it
    let mut edges: BTreeMap<String, Vec<Edge>> = BTreeMap::new();

    for file in files {
        for span in &file.fns {
            let mut held: Vec<(String, usize)> = Vec::new();
            for lineno in span.start..=span.end {
                for d in file.directives(lineno) {
                    match d {
                        Directive::Acquire(name) => {
                            for (h, _) in &held {
                                if *h != name {
                                    edges.entry(h.clone()).or_default().push(Edge {
                                        to: name.clone(),
                                        file: file.path.clone(),
                                        line: lineno,
                                    });
                                }
                            }
                            held.push((name, lineno));
                        }
                        Directive::Release(name) => {
                            if let Some(pos) = held.iter().rposition(|(h, _)| *h == name) {
                                held.remove(pos);
                            } else {
                                emit(
                                    &mut report,
                                    file,
                                    cfg,
                                    "unmatched-release",
                                    lineno,
                                    format!(
                                        "release of `{name}` in `{}` but it is not held — \
                                         annotations have drifted from the code",
                                        span.name
                                    ),
                                );
                            }
                        }
                        Directive::Blocking(chan) => {
                            if let Some((h, at)) = held.last() {
                                emit(
                                    &mut report,
                                    file,
                                    cfg,
                                    "lock-across-blocking",
                                    lineno,
                                    format!(
                                        "blocking op on `{chan}` in `{}` while holding \
                                         `{h}` (acquired line {at})",
                                        span.name
                                    ),
                                );
                            }
                        }
                        Directive::Allow { .. } => {}
                    }
                }
            }
        }
    }

    find_cycles(&edges, &mut report);
    report
}

/// DFS cycle detection over the acquisition graph; one finding per
/// distinct cycle entry lock.
fn find_cycles(edges: &BTreeMap<String, Vec<Edge>>, report: &mut AnalysisReport) {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks: BTreeMap<&str, Mark> = edges.keys().map(|k| (k.as_str(), Mark::White)).collect();
    for e in edges.values().flatten() {
        marks.entry(e.to.as_str()).or_insert(Mark::White);
    }

    fn dfs<'a>(
        node: &'a str,
        edges: &'a BTreeMap<String, Vec<Edge>>,
        marks: &mut BTreeMap<&'a str, Mark>,
        stack: &mut Vec<&'a str>,
        found: &mut Vec<(Vec<String>, String, usize)>,
    ) {
        marks.insert(node, Mark::Grey);
        stack.push(node);
        for e in edges.get(node).map(Vec::as_slice).unwrap_or_default() {
            match marks.get(e.to.as_str()).copied().unwrap_or(Mark::White) {
                Mark::Grey => {
                    let from = stack
                        .iter()
                        .position(|&s| s == e.to)
                        .unwrap_or(stack.len() - 1);
                    let mut cycle: Vec<String> =
                        stack[from..].iter().map(|s| (*s).to_owned()).collect();
                    cycle.push(e.to.clone());
                    found.push((cycle, e.file.clone(), e.line));
                }
                Mark::White => dfs(e.to.as_str(), edges, marks, stack, found),
                Mark::Black => {}
            }
        }
        stack.pop();
        marks.insert(node, Mark::Black);
    }

    let mut found = Vec::new();
    let roots: Vec<&str> = marks.keys().copied().collect();
    for node in roots {
        if marks.get(node) == Some(&Mark::White) {
            dfs(node, edges, &mut marks, &mut Vec::new(), &mut found);
        }
    }
    for (cycle, file, line) in found {
        report.findings.push(Finding {
            pass: Pass::LockGraph,
            rule: "lock-cycle",
            file,
            line,
            message: format!(
                "acquisition-order cycle {} — two interleaved call paths can deadlock",
                cycle.join(" -> ")
            ),
        });
    }
}

fn emit(
    report: &mut AnalysisReport,
    file: &SourceFile,
    cfg: &AnalysisConfig,
    rule: &'static str,
    line: usize,
    message: String,
) {
    if cfg.allows(&file.path, rule) {
        return;
    }
    if let Some((at, reason)) = file.waiver(line, rule) {
        report
            .waivers_used
            .push((file.path.clone(), at, rule.to_owned(), reason));
        return;
    }
    report.findings.push(Finding {
        pass: Pass::LockGraph,
        rule,
        file: file.path.clone(),
        line,
        message,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> AnalysisReport {
        let f = SourceFile::parse("x.rs", src);
        check(&[f], &AnalysisConfig::default())
    }

    #[test]
    fn detects_an_ab_ba_cycle() {
        let r = run(
            "fn left() {\n    // analyze:acquire(a)\n    // analyze:acquire(b)\n}\nfn right() {\n    // analyze:acquire(b)\n    // analyze:acquire(a)\n}\n",
        );
        assert_eq!(r.of_rule("lock-cycle").len(), 1);
        assert!(
            r.of_rule("lock-cycle")[0].message.contains("a -> b")
                || r.of_rule("lock-cycle")[0].message.contains("b -> a")
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let r = run(
            "fn left() {\n    // analyze:acquire(a)\n    // analyze:acquire(b)\n}\nfn right() {\n    // analyze:acquire(a)\n    // analyze:acquire(b)\n}\n",
        );
        assert!(r.clean(), "{:?}", r.findings);
    }

    #[test]
    fn blocking_under_lock_fires_and_release_clears() {
        let r = run(
            "fn bad() {\n    // analyze:acquire(q)\n    // analyze:blocking(rx)\n}\nfn good() {\n    // analyze:acquire(q)\n    // analyze:release(q)\n    // analyze:blocking(rx)\n}\n",
        );
        assert_eq!(r.of_rule("lock-across-blocking").len(), 1);
        assert_eq!(r.of_rule("lock-across-blocking")[0].line, 3);
    }

    #[test]
    fn unmatched_release_fires() {
        let r = run("fn f() {\n    // analyze:release(q)\n}\n");
        assert_eq!(r.of_rule("unmatched-release").len(), 1);
    }

    #[test]
    fn waived_blocking_is_reported_as_waiver() {
        let r = run(
            "fn worker() {\n    // analyze:acquire(q)\n    // analyze:blocking(rx) analyze:allow(lock-across-blocking) mutex is the consume token\n}\n",
        );
        assert!(r.of_rule("lock-across-blocking").is_empty());
        assert_eq!(r.waivers_used.len(), 1);
    }

    #[test]
    fn held_sets_reset_per_function() {
        let r = run(
            "fn one() {\n    // analyze:acquire(a)\n}\nfn two() {\n    // analyze:blocking(rx)\n}\n",
        );
        assert!(r.clean(), "{:?}", r.findings);
    }
}
