//! The protocol-contract audit.
//!
//! Every protocol in the workspace carries a structural contract: a
//! declared automorphism group, per-atom relabeling-invariance
//! declarations, and a fault-model validation path shared with the
//! simulator. The dynamic test suite spot-checks these on whatever the
//! corpus happens to exercise; this pass certifies them exhaustively on
//! enumerated universes, one rule per contract clause:
//!
//! * `symmetry-not-closed` — the declared group is not an automorphism
//!   group of the enumerated universe ([`check_closure`] fails);
//! * `group-order-exceeded` — the declared group's order is above
//!   [`MAX_GROUP_ORDER`], so quotient machinery would refuse to expand
//!   it (checked with a bounded closure count — never by expanding);
//! * `atom-invariance-unsound` — an atom declared `Invariant` changes
//!   verdict under some group element (soundness);
//! * `atom-invariance-missing` — an atom declared `Dependent` is in
//!   fact invariant under every group element (completeness: the
//!   declaration forfeits quotient evaluation it is entitled to);
//! * `atom-not-wellformed` — an atom distinguishes interleavings of
//!   the same per-process computations, violating the paper's
//!   well-formedness condition for predicates;
//! * `fault-validation-drift` — [`FaultModel::validate`] disagrees
//!   with the sim-layer ground truth on a corpus of valid and invalid
//!   configurations.

use crate::report::{AnalysisReport, Finding, Pass};
use hpl_core::{check_closure, enumerate, CoreError, EnumerationLimits, FaultModel};
use hpl_core::{Interpretation, Protocol, ProtocolUniverse};
use hpl_model::symmetry::MAX_GROUP_ORDER;
use hpl_model::{AtomInvariance, Permutation, ProcessId, SymmetryGroup};
use hpl_protocols::{failure, gossip, token_bus, tracking, two_generals};
use hpl_sim::SimTime;

/// One protocol under audit: its enumerated universe, interpretation,
/// and declared symmetry group.
#[derive(Debug)]
pub struct ProtocolEntry {
    /// Registry name (mirrors the `repro` workload names).
    pub name: &'static str,
    /// The enumerated universe.
    pub pu: ProtocolUniverse,
    /// The atoms registered for this protocol.
    pub interp: Interpretation,
    /// The declared automorphism group.
    pub group: SymmetryGroup,
}

/// The workspace protocol registry, mirroring the `repro` registration
/// sites. Depths are kept small — the audit certifies declarations,
/// not scale.
///
/// # Errors
///
/// Propagates enumeration budget errors.
pub fn registry() -> Result<Vec<ProtocolEntry>, CoreError> {
    let mut out = Vec::new();
    {
        let p = token_bus::TokenBus::with_chatter(3, 2);
        let group = p.symmetry();
        let pu = enumerate(&p, EnumerationLimits::depth(6))?;
        let mut interp = Interpretation::new();
        token_bus::token_atoms(&mut interp, 3);
        out.push(ProtocolEntry {
            name: "token_bus",
            pu,
            interp,
            group,
        });
    }
    {
        let p = token_bus::BroadcastBus::with_chatter(3, 1);
        let group = p.symmetry();
        let pu = enumerate(&p, EnumerationLimits::depth(5))?;
        let mut interp = Interpretation::new();
        token_bus::token_atoms(&mut interp, 3);
        out.push(ProtocolEntry {
            name: "token_star",
            pu,
            interp,
            group,
        });
    }
    {
        let p = gossip::PushGossip { n: 3 };
        let group = p.symmetry();
        let pu = enumerate(&p, EnumerationLimits::depth(5))?;
        let mut interp = Interpretation::new();
        gossip::rumor_atom(&mut interp);
        interp.register("p2-informed", |c| {
            c.iter()
                .any(|e| e.is_on(ProcessId::new(2)) && e.is_receive())
        });
        out.push(ProtocolEntry {
            name: "gossip_push",
            pu,
            interp,
            group,
        });
    }
    {
        let group = two_generals::TwoGenerals::new(3).symmetry();
        let pu = two_generals::universe(3, 6)?;
        let mut interp = Interpretation::new();
        two_generals::attack_atom(&mut interp);
        out.push(ProtocolEntry {
            name: "two_generals",
            pu,
            interp,
            group,
        });
    }
    {
        let p = failure::CrashableWorker { max_reports: 2 };
        let group = p.symmetry();
        let pu = enumerate(&p, EnumerationLimits::depth(5))?;
        let mut interp = Interpretation::new();
        interp.register("crashed", failure::crashed);
        out.push(ProtocolEntry {
            name: "crashable_worker",
            pu,
            interp,
            group,
        });
    }
    {
        let p = tracking::Toggler { max_toggles: 2 };
        let group = p.symmetry();
        let pu = enumerate(&p, EnumerationLimits::depth(5))?;
        let mut interp = Interpretation::new();
        interp.register("bit", tracking::bit);
        out.push(ProtocolEntry {
            name: "toggler",
            pu,
            interp,
            group,
        });
    }
    Ok(out)
}

/// Audits the full workspace registry plus the fault-validation corpus.
///
/// # Errors
///
/// Propagates enumeration budget errors.
pub fn audit() -> Result<AnalysisReport, CoreError> {
    let mut report = AnalysisReport::default();
    for entry in registry()? {
        audit_entry(&entry, &mut report);
    }
    audit_fault_validation_with(|fm, n| fm.validate(n).is_ok(), &mut report);
    Ok(report)
}

/// Audits one protocol entry against every per-protocol rule.
pub fn audit_entry(entry: &ProtocolEntry, report: &mut AnalysisReport) {
    report.protocols_audited += 1;
    let loc = format!("protocol:{}", entry.name);
    let n = entry.pu.universe().system_size();

    let order = match bounded_order(&entry.group, n) {
        Ok(order) => order,
        Err(at_least) => {
            report.findings.push(Finding {
                pass: Pass::Contract,
                rule: "group-order-exceeded",
                file: loc,
                line: 0,
                message: format!(
                    "declared group order is at least {at_least}, above \
                     MAX_GROUP_ORDER = {MAX_GROUP_ORDER} — quotient machinery \
                     will refuse to expand it"
                ),
            });
            return;
        }
    };
    debug_assert!(order <= MAX_GROUP_ORDER);
    let elements = entry.group.elements_for(n);

    if let Err(why) = check_closure(&entry.pu, &elements) {
        report.findings.push(Finding {
            pass: Pass::Contract,
            rule: "symmetry-not-closed",
            file: loc.clone(),
            line: 0,
            message: why,
        });
    }
    for id in entry
        .interp
        .validate_symmetry(entry.pu.universe(), &elements)
    {
        report.findings.push(Finding {
            pass: Pass::Contract,
            rule: "atom-invariance-unsound",
            file: loc.clone(),
            line: 0,
            message: format!(
                "atom `{}` is declared Invariant but changes verdict under a \
                 group element",
                entry.interp.name(id)
            ),
        });
    }
    wellformedness_findings(&loc, entry.pu.universe(), &entry.interp, report);
    if elements.len() > 1 {
        for id in entry.interp.ids() {
            if entry.interp.invariance(id) != AtomInvariance::Dependent {
                continue;
            }
            if invariant_on(&entry.interp, id, entry.pu.universe(), &elements) {
                report.findings.push(Finding {
                    pass: Pass::Contract,
                    rule: "atom-invariance-missing",
                    file: loc.clone(),
                    line: 0,
                    message: format!(
                        "atom `{}` is declared Dependent but is invariant under \
                         every group element — declare it Invariant to regain \
                         quotient evaluation",
                        entry.interp.name(id)
                    ),
                });
            }
        }
    }
}

/// Emits an `atom-not-wellformed` finding for every atom that violates
/// the paper's well-formedness condition on the given universe
/// (`x [D] y ⇒ b at x = b at y`). Shared by the per-protocol audit and
/// the seeded fixture, which needs a hand-built universe — enumerated
/// ones collapse interleavings, so the condition can only fail on
/// universes that actually contain two orderings of the same
/// per-process computations.
fn wellformedness_findings(
    loc: &str,
    universe: &hpl_core::Universe,
    interp: &Interpretation,
    report: &mut AnalysisReport,
) {
    for id in interp.validate(universe) {
        report.findings.push(Finding {
            pass: Pass::Contract,
            rule: "atom-not-wellformed",
            file: loc.to_owned(),
            line: 0,
            message: format!(
                "atom `{}` distinguishes interleavings of identical per-process \
                 computations",
                interp.name(id)
            ),
        });
    }
}

/// Whether an atom's verdict is unchanged by every non-identity group
/// element on every member of the universe.
fn invariant_on(
    interp: &Interpretation,
    id: hpl_core::AtomId,
    universe: &hpl_core::Universe,
    elements: &[Permutation],
) -> bool {
    for (_, x) in universe.iter() {
        let here = interp.eval(id, x);
        for pi in elements {
            if pi.is_identity() {
                continue;
            }
            if interp.eval(id, &x.permuted(pi)) != here {
                return false;
            }
        }
    }
    true
}

/// The order of a declared group, computed without ever materialising
/// more than [`MAX_GROUP_ORDER`] elements: arithmetic for the named
/// variants, a capped closure walk for generated ones. `Err(bound)`
/// means the order is at least `bound`, which is above the cap.
fn bounded_order(group: &SymmetryGroup, n: usize) -> Result<usize, usize> {
    let capped = |order: usize| {
        if order > MAX_GROUP_ORDER {
            Err(order)
        } else {
            Ok(order)
        }
    };
    match group {
        SymmetryGroup::Trivial => Ok(1),
        SymmetryGroup::Rotations { n } => capped((*n).max(1)),
        SymmetryGroup::Full { n } => {
            let mut order = 1usize;
            for k in 2..=*n {
                order = match order.checked_mul(k) {
                    Some(o) if o <= MAX_GROUP_ORDER => o,
                    _ => return Err(MAX_GROUP_ORDER + 1),
                };
            }
            Ok(order)
        }
        SymmetryGroup::Generated(gens) => {
            use std::collections::BTreeSet;
            let image = |p: &Permutation| (0..p.len()).map(|i| p.image_of(i)).collect::<Vec<_>>();
            let gens: Vec<Permutation> = gens.clone();
            let identity = Permutation::identity(n);
            let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
            seen.insert(image(&identity));
            let mut frontier = vec![identity];
            while let Some(e) = frontier.pop() {
                for g in &gens {
                    let f = e.compose(g);
                    if seen.insert(image(&f)) {
                        if seen.len() > MAX_GROUP_ORDER {
                            return Err(seen.len());
                        }
                        frontier.push(f);
                    }
                }
            }
            Ok(seen.len())
        }
    }
}

/// Cross-checks the model-layer fault validator against the sim-layer
/// ground truth on a corpus of valid and invalid configurations. The
/// injectable predicate is what lets the fixture corpus prove the rule
/// fires: the real audit passes [`FaultModel::validate`].
pub fn audit_fault_validation_with<F: Fn(&FaultModel, usize) -> bool>(
    model_accepts: F,
    report: &mut AnalysisReport,
) {
    for (label, fm, n) in drift_corpus() {
        let truth = reference_accepts(&fm, n);
        let model = model_accepts(&fm, n);
        if truth != model {
            report.findings.push(Finding {
                pass: Pass::Contract,
                rule: "fault-validation-drift",
                file: format!("fault-model:{label}"),
                line: 0,
                message: format!(
                    "sim-layer ground truth says {}, FaultModel::validate says {} \
                     — the validation paths have drifted",
                    verdict(truth),
                    verdict(model)
                ),
            });
        }
    }
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "accept"
    } else {
        "reject"
    }
}

/// The sim-layer ground truth, restated from first principles: the
/// network must pass its own validation and every crash must name a
/// process in range.
fn reference_accepts(fm: &FaultModel, n: usize) -> bool {
    fm.network.validate().is_ok() && fm.crashes.iter().all(|(p, _)| p.index() < n)
}

/// Valid and invalid fault configurations, one per validation clause.
fn drift_corpus() -> Vec<(&'static str, FaultModel, usize)> {
    let mut lossy = FaultModel::default();
    lossy.network.default.drop_probability = 0.25;

    let mut overdropped = FaultModel::default();
    overdropped.network.default.drop_probability = 1.5;

    let mut negative = FaultModel::default();
    negative.network.default.drop_probability = -0.1;

    vec![
        ("default", FaultModel::default(), 3),
        ("lossy-quarter", lossy, 3),
        (
            "crash-in-range",
            FaultModel::default().with_crash(ProcessId::new(1), SimTime::from_ticks(5)),
            3,
        ),
        ("drop-above-one", overdropped, 3),
        ("drop-negative", negative, 3),
        (
            "crash-out-of-range",
            FaultModel::default().with_crash(ProcessId::new(9), SimTime::from_ticks(5)),
            3,
        ),
    ]
}

/// Builds the seeded-violation audit used by the fixture corpus: each
/// name wires a deliberately wrong contract through the same audit code
/// paths the real registry takes, proving the rule can fire.
///
/// # Errors
///
/// Enumeration failures and unknown fixture names, as plain strings.
pub fn audit_fixture(name: &str) -> Result<AnalysisReport, String> {
    let mut report = AnalysisReport::default();
    match name {
        "unclosed-group" => {
            // the line bus is asymmetric: Full(3) moves the initial token
            let p = token_bus::TokenBus::new(3);
            let pu = enumerate(&p, EnumerationLimits::depth(5)).map_err(|e| e.to_string())?;
            audit_entry(
                &ProtocolEntry {
                    name: "fixture-unclosed",
                    pu,
                    interp: Interpretation::new(),
                    group: SymmetryGroup::Full { n: 3 },
                },
                &mut report,
            );
        }
        "overcap-group" => {
            // 9! = 362880 > MAX_GROUP_ORDER; the audit must refuse without
            // expanding a single element
            let p = tracking::Toggler { max_toggles: 1 };
            let pu = enumerate(&p, EnumerationLimits::depth(4)).map_err(|e| e.to_string())?;
            audit_entry(
                &ProtocolEntry {
                    name: "fixture-overcap",
                    pu,
                    interp: Interpretation::new(),
                    group: SymmetryGroup::Full { n: 9 },
                },
                &mut report,
            );
        }
        "undeclared-invariant" => {
            // rumor-started registered Dependent although it is invariant
            // under the gossip group — the day-one bug class
            let p = gossip::PushGossip { n: 3 };
            let pu = enumerate(&p, EnumerationLimits::depth(4)).map_err(|e| e.to_string())?;
            let mut interp = Interpretation::new();
            interp.register("rumor-started", gossip::rumor_started);
            audit_entry(
                &ProtocolEntry {
                    name: "fixture-undeclared",
                    pu,
                    interp,
                    group: SymmetryGroup::fixing(3, 0),
                },
                &mut report,
            );
        }
        "wrongly-declared-invariant" => {
            // p2-informed names a relabelable process; Invariant is unsound
            let p = gossip::PushGossip { n: 3 };
            let pu = enumerate(&p, EnumerationLimits::depth(4)).map_err(|e| e.to_string())?;
            let mut interp = Interpretation::new();
            interp.register_invariant("p2-informed", |c| {
                c.iter()
                    .any(|e| e.is_on(ProcessId::new(2)) && e.is_receive())
            });
            audit_entry(
                &ProtocolEntry {
                    name: "fixture-wrongly-declared",
                    pu,
                    interp,
                    group: SymmetryGroup::fixing(3, 0),
                },
                &mut report,
            );
        }
        "unwellformed-atom" => {
            // the verdict depends on the interleaving, not the per-process
            // computations — the paper's well-formedness condition fails.
            // Enumerated universes collapse interleavings, so the fixture
            // hand-builds two orderings of the same per-process steps.
            let mut pool = hpl_model::ScenarioPool::new(2);
            let e0 = pool.internal(ProcessId::new(0));
            let e1 = pool.internal(ProcessId::new(1));
            let x = pool.compose([e0, e1]).map_err(|e| e.to_string())?;
            let y = pool.compose([e1, e0]).map_err(|e| e.to_string())?;
            let universe =
                hpl_core::Universe::from_computations(2, [x, y]).map_err(|e| e.to_string())?;
            let mut interp = Interpretation::new();
            interp.register("first-event-on-p0", |c| {
                c.iter().next().is_some_and(|e| e.is_on(ProcessId::new(0)))
            });
            wellformedness_findings(
                "protocol:fixture-unwellformed",
                &universe,
                &interp,
                &mut report,
            );
        }
        "validation-drift" => {
            // an injected validator that forgets the crash-range clause
            audit_fault_validation_with(|fm, _n| fm.network.validate().is_ok(), &mut report);
        }
        other => return Err(format!("unknown contract fixture `{other}`")),
    }
    Ok(report)
}

/// Names of every seeded contract fixture, for corpus loops.
#[must_use]
pub fn fixture_names() -> &'static [&'static str] {
    &[
        "unclosed-group",
        "overcap-group",
        "undeclared-invariant",
        "wrongly-declared-invariant",
        "unwellformed-atom",
        "validation-drift",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_workspace_registry_is_clean() {
        let report = audit().expect("registry enumerates");
        assert!(
            report.clean(),
            "contract findings on HEAD: {:?}",
            report.findings
        );
        assert_eq!(report.protocols_audited, 6);
    }

    #[test]
    fn every_fixture_fires_its_rule() {
        let expected = [
            ("unclosed-group", "symmetry-not-closed"),
            ("overcap-group", "group-order-exceeded"),
            ("undeclared-invariant", "atom-invariance-missing"),
            ("wrongly-declared-invariant", "atom-invariance-unsound"),
            ("unwellformed-atom", "atom-not-wellformed"),
            ("validation-drift", "fault-validation-drift"),
        ];
        assert_eq!(expected.len(), fixture_names().len());
        for (name, rule) in expected {
            let report = audit_fixture(name).expect("fixture builds");
            assert!(
                !report.of_rule(rule).is_empty(),
                "fixture {name} did not fire {rule}: {:?}",
                report.findings
            );
        }
    }

    #[test]
    fn bounded_order_matches_arithmetic() {
        assert_eq!(bounded_order(&SymmetryGroup::Trivial, 3), Ok(1));
        assert_eq!(bounded_order(&SymmetryGroup::Full { n: 4 }, 4), Ok(24));
        assert_eq!(bounded_order(&SymmetryGroup::Rotations { n: 5 }, 5), Ok(5));
        assert!(bounded_order(&SymmetryGroup::Full { n: 9 }, 9).is_err());
        // fixing(4, 0) is S₃ on the last three processes
        assert_eq!(bounded_order(&SymmetryGroup::fixing(4, 0), 4), Ok(6));
    }
}
