//! Workspace static analysis: determinism lints, protocol-contract
//! audits, and a lock-graph checker.
//!
//! Everything the engine promises — byte-identical merges across shard
//! counts, seed-coupled fault sweeps, quotient soundness — is certified
//! dynamically by tests and bench gates, which can only catch what the
//! corpus exercises. This crate checks the same promises *statically,
//! from structure*, in the spirit of the paper's program of reasoning
//! about what a system guarantees from its description alone:
//!
//! * [`determinism`] — a lexical pass over workspace sources banning
//!   nondeterministic constructs (hash-order iteration, wall clocks,
//!   stray threads, unseeded RNG, `.unwrap()` in hot paths) where the
//!   determinism contract applies;
//! * [`contract`] — an exhaustive audit of every registered protocol's
//!   declared symmetry group and atom-invariance declarations, plus a
//!   fault-model validation cross-check;
//! * [`lockgraph`] — a lock-acquisition-order graph built from
//!   annotated lock sites, failing on cycles and on blocking ops under
//!   a held lock.
//!
//! Scope and policy live in a committed `analysis.toml`
//! ([`AnalysisConfig`]); intentional violations take inline waivers
//! (`// analyze:allow(rule) reason`) that must carry a reason and are
//! echoed into the report. The `repro analyze` subcommand drives all
//! three passes and gates CI at exit code 8; no dependencies beyond the
//! workspace itself (std only, consistent with the vendored-offline
//! policy).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod contract;
pub mod determinism;
pub mod lockgraph;
pub mod report;
pub mod source;

pub use config::{AnalysisConfig, ConfigError};
pub use report::{AnalysisReport, Finding, Pass};
pub use source::{Directive, SourceFile};

use std::path::Path;

/// Runs every configured pass rooted at `root`: the lexical passes over
/// the configured scan roots, and (when `cfg.audit_protocols` is set)
/// the protocol-contract audit.
///
/// # Errors
///
/// I/O errors from the source walk and enumeration errors from the
/// contract audit, as strings.
pub fn analyze_workspace(root: &Path, cfg: &AnalysisConfig) -> Result<AnalysisReport, String> {
    let files =
        source::scan_files(root, &cfg.scan_roots).map_err(|e| format!("source walk: {e}"))?;
    let mut report = determinism::lint(&files, cfg);
    report.merge(lockgraph::check(&files, cfg));
    if cfg.audit_protocols {
        report.merge(contract::audit().map_err(|e| format!("contract audit: {e}"))?);
    }
    // deterministic output order regardless of pass structure
    report.findings.sort_by(|a, b| {
        (a.pass.id(), &a.file, a.line, a.rule).cmp(&(b.pass.id(), &b.file, b.line, b.rule))
    });
    report
        .waivers_used
        .sort_by(|a, b| (&a.0, a.1, &a.2).cmp(&(&b.0, b.1, &b.2)));
    Ok(report)
}
