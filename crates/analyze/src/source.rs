//! A lightweight lexer over workspace `.rs` sources.
//!
//! The lexical passes need three things no regex over raw text gets
//! right: code with string/char literals and comments stripped (so a
//! banned token inside a doc comment or an error message never fires),
//! the comment text itself (where `analyze:` directives live), and
//! structural context — whether a line sits inside a `#[cfg(test)]`
//! item and which function body it belongs to. This module computes all
//! three in one pass; it is a lexer, not a parser, and deliberately
//! stays on the cheap side of that line.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One analysed source line.
#[derive(Clone, Debug, Default)]
pub struct Line {
    /// Code with string/char literal *contents* and all comments
    /// removed (the enclosing quotes survive as empty literals).
    pub code: String,
    /// Comment text on the line (line comments and any block-comment
    /// portion), concatenated.
    pub comment: String,
    /// `true` when the line is inside a `#[cfg(test)]`-gated braced
    /// item (a test module, usually).
    pub in_test: bool,
    /// Index into [`SourceFile::fns`] of the innermost enclosing
    /// function body, if any.
    pub fn_index: Option<usize>,
}

/// A function body span (1-based, inclusive lines).
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// First line of the body.
    pub start: usize,
    /// Last line of the body.
    pub end: usize,
}

/// An `analyze:` directive parsed from a comment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Directive {
    /// `analyze:allow(rule) reason` — waives findings of `rule` on this
    /// line and the next. An empty reason is itself a finding.
    Allow {
        /// The waived rule id.
        rule: String,
        /// Free-text justification (required by policy).
        reason: String,
    },
    /// `analyze:acquire(name)` — a lock acquisition site.
    Acquire(String),
    /// `analyze:release(name)` — an explicit release (e.g. `drop`).
    Release(String),
    /// `analyze:blocking(name)` — a blocking channel/condvar operation.
    Blocking(String),
}

/// A lexed source file.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Path relative to the analysis root, `/`-separated.
    pub path: String,
    /// Per-line analysis results; index 0 is line 1.
    pub lines: Vec<Line>,
    /// Function body spans, in source order.
    pub fns: Vec<FnSpan>,
}

impl SourceFile {
    /// Lexes file text.
    #[must_use]
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let mut lines = split_lexical(text);
        let fns = attach_structure(&mut lines);
        SourceFile {
            path: path.to_owned(),
            lines,
            fns,
        }
    }

    /// All `analyze:` directives on a 1-based line.
    #[must_use]
    pub fn directives(&self, line: usize) -> Vec<Directive> {
        self.lines
            .get(line - 1)
            .map(|l| parse_directives(&l.comment))
            .unwrap_or_default()
    }

    /// Whether a finding of `rule` at 1-based `line` is waived by an
    /// `analyze:allow` on the same line or the line above. Returns the
    /// waiver's `(line, reason)` when it is.
    #[must_use]
    pub fn waiver(&self, line: usize, rule: &str) -> Option<(usize, String)> {
        for at in [line, line.saturating_sub(1)] {
            if at == 0 {
                continue;
            }
            for d in self.directives(at) {
                if let Directive::Allow { rule: r, reason } = d {
                    if r == rule && !reason.is_empty() {
                        return Some((at, reason));
                    }
                }
            }
        }
        None
    }
}

/// Splits text into per-line code and comment streams, tracking string,
/// char, raw-string and (nested) block-comment state across lines.
#[allow(clippy::too_many_lines)]
fn split_lexical(text: &str) -> Vec<Line> {
    let cs: Vec<char> = text.chars().collect();
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut i = 0;
    macro_rules! newline {
        () => {
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                ..Line::default()
            })
        };
    }
    while i < cs.len() {
        let c = cs[i];
        match c {
            '\n' => {
                newline!();
                i += 1;
            }
            '/' if cs.get(i + 1) == Some(&'/') => {
                while i < cs.len() && cs[i] != '\n' {
                    comment.push(cs[i]);
                    i += 1;
                }
            }
            '/' if cs.get(i + 1) == Some(&'*') => {
                let mut depth = 1usize;
                comment.push_str("/*");
                i += 2;
                while i < cs.len() && depth > 0 {
                    if cs[i] == '\n' {
                        newline!();
                        i += 1;
                    } else if cs[i] == '/' && cs.get(i + 1) == Some(&'*') {
                        depth += 1;
                        comment.push_str("/*");
                        i += 2;
                    } else if cs[i] == '*' && cs.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        comment.push_str("*/");
                        i += 2;
                    } else {
                        comment.push(cs[i]);
                        i += 1;
                    }
                }
            }
            'r' | 'b' if raw_string_at(&cs, i).is_some() => {
                let hashes = raw_string_at(&cs, i).unwrap_or(0);
                // skip prefix + hashes + opening quote
                while i < cs.len() && cs[i] != '"' {
                    i += 1;
                }
                i += 1;
                code.push_str("\"\"");
                'raw: while i < cs.len() {
                    if cs[i] == '\n' {
                        newline!();
                    } else if cs[i] == '"' {
                        let mut h = 0;
                        while h < hashes && cs.get(i + 1 + h) == Some(&'#') {
                            h += 1;
                        }
                        if h == hashes {
                            i += 1 + hashes;
                            break 'raw;
                        }
                    }
                    i += 1;
                }
            }
            '"' => {
                code.push_str("\"\"");
                i += 1;
                while i < cs.len() {
                    match cs[i] {
                        '\\' => {
                            // an escaped newline continues the literal but
                            // still ends a source line
                            if cs.get(i + 1) == Some(&'\n') {
                                newline!();
                            }
                            i += 2;
                        }
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            newline!();
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
            }
            '\'' => {
                // char literal vs lifetime: a literal is 'x' or '\…'
                let is_char = match cs.get(i + 1) {
                    Some('\\') => true,
                    Some(_) => cs.get(i + 2) == Some(&'\''),
                    None => false,
                };
                if is_char {
                    code.push_str("' '");
                    i += 1;
                    while i < cs.len() {
                        match cs[i] {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                } else {
                    code.push('\'');
                    i += 1;
                }
            }
            c => {
                code.push(c);
                i += 1;
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        newline!();
    }
    lines
}

/// Whether position `i` starts a raw string (`r"`, `r#"`, `br##"` …);
/// returns the hash count.
fn raw_string_at(cs: &[char], mut i: usize) -> Option<usize> {
    if cs.get(i) == Some(&'b') {
        i += 1;
    }
    if cs.get(i) != Some(&'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0;
    while cs.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    (cs.get(i) == Some(&'"')).then_some(hashes)
}

/// Second pass over stripped code: brace-depth tracking for
/// `#[cfg(test)]` regions and function body spans.
fn attach_structure(lines: &mut [Line]) -> Vec<FnSpan> {
    let mut fns: Vec<FnSpan> = Vec::new();
    // open fn bodies / test regions, by the depth their `{` produced
    let mut fn_stack: Vec<(usize, usize)> = Vec::new(); // (fn index, depth)
    let mut test_stack: Vec<usize> = Vec::new();
    let mut depth = 0usize;
    let mut pending_fn: Option<String> = None;
    let mut pending_test = false;

    for (li, line) in lines.iter_mut().enumerate() {
        line.in_test = !test_stack.is_empty();
        line.fn_index = fn_stack.last().map(|&(f, _)| f);
        let toks: Vec<char> = line.code.chars().collect();
        let mut j = 0;
        while j < toks.len() {
            let c = toks[j];
            if c == '#' && starts_with_at(&toks, j, "#[cfg(test)]") {
                pending_test = true;
                j += "#[cfg(test)]".len();
                continue;
            }
            match c {
                '{' => {
                    depth += 1;
                    if pending_test {
                        test_stack.push(depth);
                        pending_test = false;
                        // a cfg(test)-gated item shadows every line it spans
                        line.in_test = true;
                    }
                    if let Some(name) = pending_fn.take() {
                        fns.push(FnSpan {
                            name,
                            start: li + 1,
                            end: li + 1,
                        });
                        fn_stack.push((fns.len() - 1, depth));
                        if line.fn_index.is_none() {
                            line.fn_index = Some(fns.len() - 1);
                        }
                    }
                }
                '}' => {
                    if test_stack.last() == Some(&depth) {
                        test_stack.pop();
                    }
                    if let Some(&(f, d)) = fn_stack.last() {
                        if d == depth {
                            fns[f].end = li + 1;
                            fn_stack.pop();
                        }
                    }
                    depth = depth.saturating_sub(1);
                }
                ';' => {
                    // `#[cfg(test)] use …;` or a bodiless trait fn
                    pending_test = false;
                    pending_fn = None;
                }
                _ if is_ident_start(c) => {
                    let start = j;
                    while j < toks.len() && is_ident_continue(toks[j]) {
                        j += 1;
                    }
                    let word: String = toks[start..j].iter().collect();
                    if word == "fn" {
                        // the next identifier is the function name
                        let mut k = j;
                        while k < toks.len() && !is_ident_start(toks[k]) {
                            if toks[k] == '(' || toks[k] == '{' {
                                break;
                            }
                            k += 1;
                        }
                        let mut name = String::new();
                        while k < toks.len() && is_ident_continue(toks[k]) {
                            name.push(toks[k]);
                            k += 1;
                        }
                        if !name.is_empty() {
                            pending_fn = Some(name);
                        }
                        j = k;
                    }
                    continue;
                }
                _ => {}
            }
            j += 1;
        }
    }
    fns
}

fn starts_with_at(toks: &[char], at: usize, pat: &str) -> bool {
    pat.chars()
        .enumerate()
        .all(|(k, c)| toks.get(at + k) == Some(&c))
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Parses every `analyze:` directive out of a comment string.
#[must_use]
pub fn parse_directives(comment: &str) -> Vec<Directive> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("analyze:") {
        rest = &rest[at + "analyze:".len()..];
        let Some(open) = rest.find('(') else { break };
        let verb = rest[..open].trim().to_owned();
        let Some(close) = rest.find(')') else { break };
        if close < open {
            break;
        }
        let arg = rest[open + 1..close].trim().to_owned();
        rest = &rest[close + 1..];
        match verb.as_str() {
            "allow" => {
                let end = rest.find("analyze:").unwrap_or(rest.len());
                let reason = rest[..end].trim().trim_end_matches("*/").trim();
                out.push(Directive::Allow {
                    rule: arg,
                    reason: reason.to_owned(),
                });
            }
            "acquire" => out.push(Directive::Acquire(arg)),
            "release" => out.push(Directive::Release(arg)),
            "blocking" => out.push(Directive::Blocking(arg)),
            _ => {}
        }
    }
    out
}

/// Walks the scan roots and lexes every `.rs` file, skipping `target`,
/// `vendor`, `tests`, `benches`, `examples`, and dot directories. Files
/// come back sorted by path, so every downstream report is
/// deterministic.
///
/// # Errors
///
/// I/O errors from directory walks or file reads.
pub fn scan_files(root: &Path, scan_roots: &[String]) -> std::io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for sub in scan_roots {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs(&dir, &mut paths)?;
        } else if dir.extension().is_some_and(|e| e == "rs") {
            paths.push(dir);
        }
    }
    paths.sort();
    paths.dedup();
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let text = std::fs::read_to_string(&p)?;
        let rel =
            p.strip_prefix(root)
                .unwrap_or(&p)
                .components()
                .fold(String::new(), |mut acc, c| {
                    if !acc.is_empty() {
                        acc.push('/');
                    }
                    let _ = write!(acc, "{}", c.as_os_str().to_string_lossy());
                    acc
                });
        files.push(SourceFile::parse(&rel, &text));
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // tests/benches/examples are test code: free to time, spawn
            // and unwrap, and not inside #[cfg(test)] mods
            if matches!(
                name.as_ref(),
                "target" | "vendor" | "tests" | "benches" | "examples"
            ) || name.starts_with('.')
            {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_strings_and_comments() {
        let f = SourceFile::parse(
            "x.rs",
            r##"let a = "Instant::now"; // Instant::now in comment
let b = r#"thread::spawn"#; /* block
still block */ let c = 'x';
let d = b"bytes";
"##,
        );
        assert!(!f.lines[0].code.contains("Instant"));
        assert!(f.lines[0].comment.contains("Instant::now"));
        assert!(!f.lines[1].code.contains("spawn"));
        assert!(f.lines[1].comment.contains("block"));
        assert!(f.lines[2].code.contains("let c"));
        assert!(!f.lines[3].code.contains("bytes"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let f = SourceFile::parse("x.rs", "fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(f.lines[0].code.contains("str"));
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "f");
    }

    #[test]
    fn tracks_cfg_test_regions_and_fn_spans() {
        let src = "fn hot() {\n    work();\n}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { hot(); }\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.lines[1].in_test, "body of hot() is not test code");
        assert!(f.lines[7].in_test, "test fn body is test code");
        assert_eq!(f.fns[0].name, "hot");
        assert_eq!((f.fns[0].start, f.fns[0].end), (1, 3));
        assert_eq!(f.lines[1].fn_index, Some(0));
    }

    #[test]
    fn cfg_test_on_use_item_does_not_open_a_region() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() { x(); }\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn parses_directives_and_waivers() {
        let ds = parse_directives("// analyze:acquire(gate) analyze:blocking(res_rx)");
        assert_eq!(
            ds,
            vec![
                Directive::Acquire("gate".into()),
                Directive::Blocking("res_rx".into())
            ]
        );
        let ds = parse_directives("// analyze:allow(wall-clock) merge stall diagnostics only");
        assert_eq!(
            ds,
            vec![Directive::Allow {
                rule: "wall-clock".into(),
                reason: "merge stall diagnostics only".into()
            }]
        );
        let f = SourceFile::parse(
            "x.rs",
            "// analyze:allow(wall-clock) stats only\nlet t = Instant::now();\nlet u = Instant::now();\n",
        );
        assert!(f.waiver(2, "wall-clock").is_some());
        assert!(f.waiver(3, "wall-clock").is_none());
        // an allow without a reason does not waive
        let g = SourceFile::parse(
            "x.rs",
            "let t = Instant::now(); // analyze:allow(wall-clock)\n",
        );
        assert!(g.waiver(1, "wall-clock").is_none());
    }
}
