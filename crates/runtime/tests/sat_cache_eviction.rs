//! Size-aware eviction of the cross-query satisfaction cache
//! (`SatCache`): the resident-bytes estimate is capped at a fixed
//! capacity, publishing past it sheds least-recently-**served**
//! entries, a hot entry survives arbitrary churn as long as it keeps
//! being served, and `carry_forward` keeps working under the bound.
//! Closes the ROADMAP "cache eviction" follow-on to the query service.

use hpl_core::{
    enumerate, CompSet, EnumerationLimits, Formula, Interpretation, SatCache, Universe,
};
use hpl_protocols::token_bus::{self, TokenBus};
use hpl_runtime::QueryService;
use std::sync::Arc;

/// A family of structurally distinct formulas to use as cache keys —
/// no interpretation needed, the cache keys on the `Formula` verbatim.
fn probe(i: usize) -> Formula {
    let mut f = Formula::True;
    for _ in 0..=i {
        f = f.not();
    }
    f
}

/// Measures what one 64-bit-wide entry costs in the resident-bytes
/// estimate, so capacities can be phrased in entries without
/// hardcoding the overhead constant.
fn one_entry_cost() -> usize {
    let cache = SatCache::shared();
    cache.publish(1, &probe(0), &CompSet::full(64));
    cache.stats().resident_bytes
}

#[test]
fn publishing_past_capacity_evicts_down_to_the_cap() {
    let cost = one_entry_cost();
    let cache = SatCache::shared_with_capacity(4 * cost);
    for i in 0..20 {
        cache.publish(1, &probe(i), &CompSet::full(64));
    }
    let stats = cache.stats();
    assert!(
        stats.entries <= 4,
        "4-entry capacity must bound occupancy, got {} entries",
        stats.entries
    );
    assert!(
        stats.resident_bytes <= stats.capacity_bytes,
        "estimate {} must fit the cap {}",
        stats.resident_bytes,
        stats.capacity_bytes
    );
    assert_eq!(stats.evictions, 16, "20 published, 4 resident");
    // the most recently published entry is never the eviction victim
    assert!(cache.lookup(1, &probe(19)).is_some());
    assert!(
        cache.lookup(1, &probe(0)).is_none(),
        "coldest entry evicted"
    );
}

#[test]
fn served_entries_survive_churn() {
    let cost = one_entry_cost();
    let cache = SatCache::shared_with_capacity(3 * cost);
    let hot = probe(0);
    cache.publish(1, &hot, &CompSet::full(64));
    for i in 1..30 {
        // serving the hot entry between publishes refreshes its stamp
        assert!(cache.lookup(1, &hot).is_some(), "hot entry lost at {i}");
        cache.publish(1, &probe(i), &CompSet::full(64));
    }
    assert!(cache.lookup(1, &hot).is_some());
    assert!(cache.stats().entries <= 3);
}

#[test]
fn a_single_oversized_entry_is_still_cached() {
    // capacity below one entry: the cache degrades to most-recent-only
    // instead of thrashing to empty
    let cache = SatCache::shared_with_capacity(1);
    cache.publish(1, &probe(0), &CompSet::full(64));
    assert!(cache.lookup(1, &probe(0)).is_some());
    cache.publish(1, &probe(1), &CompSet::full(64));
    assert!(cache.lookup(1, &probe(1)).is_some());
    assert!(cache.lookup(1, &probe(0)).is_none());
    assert_eq!(cache.stats().entries, 1);
}

#[test]
fn carry_forward_republishes_under_the_cap() {
    let cost = one_entry_cost();
    let cache = SatCache::shared_with_capacity(4 * cost);
    for i in 0..3 {
        cache.publish(1, &probe(i), &CompSet::full(64));
    }
    let carried = cache.carry_forward(1, 2, |_, s| Some(s.clone()));
    assert_eq!(carried, 3, "every source entry is transferable here");
    let stats = cache.stats();
    assert!(
        stats.entries <= 4,
        "carried entries obey the cap, got {} entries",
        stats.entries
    );
    assert!(stats.resident_bytes <= stats.capacity_bytes);
    // the carried generation is servable
    assert!(cache.lookup(2, &probe(2)).is_some());
}

/// Structurally distinct service-level queries: nested implication
/// chains over the token atoms (no constants, so the planner's folding
/// leaves each chain a distinct plan root).
fn query_corpus(atoms: &[Formula], n: usize) -> Vec<Formula> {
    let mut out = Vec::with_capacity(n);
    let mut f = atoms[0].clone();
    for i in 0..n {
        f = atoms[i % atoms.len()].clone().implies(f);
        out.push(f.clone());
    }
    out
}

fn snapshot_parts() -> (Arc<Universe>, Arc<Interpretation>) {
    let pu = enumerate(&TokenBus::new(3), EnumerationLimits::depth(6)).expect("within budget");
    let mut interp = Interpretation::new();
    token_bus::token_atoms(&mut interp, 3);
    (Arc::new(pu.into_universe()), Arc::new(interp))
}

#[test]
fn bounded_service_cache_stays_bounded_and_keeps_answering() {
    let (universe, interp) = snapshot_parts();
    let mut interp_atoms = Interpretation::new();
    let atoms = token_bus::token_atoms(&mut interp_atoms, 3);
    let corpus = query_corpus(&atoms, 30);

    // calibrate: an unbounded scenario tells us what the corpus costs
    let service = QueryService::start(2);
    service.register("unbounded", Arc::clone(&universe), Arc::clone(&interp));
    let session = service.session("unbounded").expect("registered");
    for f in &corpus {
        session.query_formula(f).expect("evaluates");
    }
    let free = service
        .snapshot("unbounded")
        .expect("registered")
        .sat_cache_stats();
    assert!(
        free.entries >= corpus.len(),
        "corpus must produce distinct cache keys, got {} entries",
        free.entries
    );
    assert_eq!(free.evictions, 0, "default capacity fits this corpus");
    let per_entry = free.resident_bytes / free.entries;

    // now a scenario whose cache holds roughly 5 of the 30 entries
    service.set_sat_cache_capacity(5 * per_entry);
    service.register("bounded", Arc::clone(&universe), Arc::clone(&interp));
    let bounded = service.session("bounded").expect("registered");
    let reference: Vec<usize> = corpus
        .iter()
        .map(|f| bounded.query_formula(f).expect("evaluates").count)
        .collect();
    let stats = service
        .snapshot("bounded")
        .expect("registered")
        .sat_cache_stats();
    assert!(
        stats.entries < corpus.len() / 2,
        "the bound must have evicted most of the corpus, got {} entries",
        stats.entries
    );
    assert!(stats.evictions > 0);
    assert!(stats.resident_bytes <= stats.capacity_bytes);

    // evicted entries re-evaluate to the same answers
    let again: Vec<usize> = corpus
        .iter()
        .map(|f| bounded.query_formula(f).expect("evaluates").count)
        .collect();
    assert_eq!(reference, again);

    // the eviction counters are on the metrics surface
    let text = bounded.metrics_snapshot();
    assert!(text.contains("hpl_sat_cache_evictions"));
    assert!(text.contains("hpl_sat_cache_capacity_bytes"));
}
