//! Concurrent determinism of the query service: N client threads
//! issuing the same and overlapping formula batches against one
//! `Arc<Universe>` snapshot must get satisfaction sets **byte-identical**
//! to a sequential `Evaluator` over the same universe — across
//! protocols × quotient policies {Expand, Reject} × thread counts
//! {1, 4, 16}.

use hpl_core::{
    enumerate, enumerate_sharded, CompSet, EnumerationLimits, Evaluator, Formula, Interpretation,
    Orbits, QuotientPolicy, ShardConfig, Universe,
};
use hpl_model::ProcessSet;
use hpl_protocols::{token_bus, two_generals};
use hpl_runtime::{QueryError, QueryService};
use std::sync::Arc;

/// One scenario snapshot plus its formula corpus.
struct Fixture {
    name: &'static str,
    universe: Arc<Universe>,
    interp: Arc<Interpretation>,
    orbits: Option<Arc<Orbits>>,
    corpus: Vec<Formula>,
}

/// Atoms `t0` (invariant) / `t1`, `t2` (dependent) over three
/// processes: a corpus spanning plain propositional structure, sound
/// quotient knowledge, exact-at-representatives knowledge, and
/// out-of-contract formulas that force the Expand/Reject policies to
/// diverge in behavior (never in correctness).
fn mixed_corpus(atoms: &[Formula]) -> Vec<Formula> {
    let t0 = atoms[0].clone();
    let t1 = atoms[1].clone();
    let t2 = atoms[2].clone();
    let p0 = ProcessSet::from_indices([0]);
    let p1 = ProcessSet::from_indices([1]);
    let shared = t0.clone().and(t1.clone());
    vec![
        t0.clone(),
        t1.clone(),
        t0.clone().not(),
        shared.clone().or(shared.clone().not()),
        t0.clone().implies(t2.clone()),
        // sound on the quotient: knowledge of an invariant atom
        Formula::knows(p0, t0.clone()),
        Formula::everyone(t0.clone()),
        Formula::common(t0.clone()),
        Formula::sure(p1, t0.clone()),
        // exact at representatives: outermost knowledge over a moved set
        Formula::knows(p1, t0.clone()),
        Formula::knows(p1, Formula::knows(p0, t0.clone())),
        // out of contract: knowledge over a dependent atom / nested
        // knowledge over a moved set — Expand computes exactly,
        // Reject errors (on both the service and the reference)
        Formula::knows(p0, t1.clone()),
        Formula::everyone(Formula::knows(p1, t0.clone())),
        Formula::sure(p1, t1),
        // constant folding fodder
        t0.clone().and(Formula::True),
        Formula::knows(p0, t0.or(Formula::True)),
    ]
}

fn token_fixture() -> Fixture {
    let cfg = ShardConfig::with_shards(4).quotient();
    let out = enumerate_sharded(
        &token_bus::TokenBus::with_chatter(3, 2),
        EnumerationLimits::depth(8),
        &cfg,
    )
    .expect("token-bus enumeration");
    let orbits = out.orbits.expect("quotient mode yields orbits");
    let mut interp = Interpretation::new();
    let atoms = token_bus::token_atoms(&mut interp, 3);
    Fixture {
        name: "token_bus",
        universe: Arc::new(out.universe.into_universe()),
        interp: Arc::new(interp),
        orbits: Some(Arc::new(orbits)),
        corpus: mixed_corpus(&atoms),
    }
}

fn broadcast_fixture() -> Fixture {
    let cfg = ShardConfig::with_shards(4).quotient();
    let out = enumerate_sharded(
        &token_bus::BroadcastBus::with_chatter(3, 1),
        EnumerationLimits::depth(7),
        &cfg,
    )
    .expect("broadcast-bus enumeration");
    let orbits = out.orbits.expect("quotient mode yields orbits");
    let mut interp = Interpretation::new();
    let atoms = token_bus::token_atoms(&mut interp, 3);
    Fixture {
        name: "broadcast",
        universe: Arc::new(out.universe.into_universe()),
        interp: Arc::new(interp),
        orbits: Some(Arc::new(orbits)),
        corpus: mixed_corpus(&atoms),
    }
}

fn generals_fixture() -> Fixture {
    let pu = two_generals::universe(3, 6).expect("two-generals enumeration");
    let mut interp = Interpretation::new();
    let attack = two_generals::attack_atom(&mut interp);
    let g0 = ProcessSet::from_indices([0]);
    let g1 = ProcessSet::from_indices([1]);
    let corpus = vec![
        attack.clone(),
        attack.clone().not(),
        Formula::knows(g1, attack.clone()),
        Formula::knows(g0, Formula::knows(g1, attack.clone())),
        Formula::common(attack.clone()),
        Formula::sure(g1, attack.clone()),
        Formula::everyone(attack.clone()).implies(attack.clone()),
        attack.clone().and(Formula::True),
    ];
    Fixture {
        name: "two_generals",
        universe: Arc::new(pu.into_universe()),
        interp: Arc::new(interp),
        orbits: None,
        corpus,
    }
}

/// Sequential reference: a plain/symmetry `Evaluator` over the same
/// snapshot, same policy, evaluated formula by formula.
fn reference(fx: &Fixture, policy: QuotientPolicy) -> Vec<Result<CompSet, ()>> {
    let mut eval = match &fx.orbits {
        Some(o) => Evaluator::with_symmetry_policy(&fx.universe, &fx.interp, o, policy),
        None => Evaluator::new(&fx.universe, &fx.interp),
    };
    fx.corpus
        .iter()
        .map(|f| eval.try_sat_set(f).map_err(|_| ()))
        .collect()
}

/// The matrix cell: `threads` clients, each walking the corpus from a
/// rotated start (overlapping batches), every response compared
/// byte-for-byte against the sequential reference.
fn assert_concurrent_matches_sequential(fx: &Fixture, policy: QuotientPolicy, threads: usize) {
    let want = reference(fx, policy);
    let service = QueryService::start(threads);
    match &fx.orbits {
        Some(o) => service.register_quotient(
            fx.name,
            Arc::clone(&fx.universe),
            Arc::clone(&fx.interp),
            Arc::clone(o),
            policy,
        ),
        None => service.register(fx.name, Arc::clone(&fx.universe), Arc::clone(&fx.interp)),
    };

    std::thread::scope(|s| {
        for t in 0..threads {
            let service = &service;
            let want = &want;
            let corpus = &fx.corpus;
            let name = fx.name;
            s.spawn(move || {
                let session = service.session(name).expect("registered scenario");
                let n = corpus.len();
                for k in 0..n {
                    let i = (k + t) % n; // rotated: overlapping, not lockstep
                    match (session.query_formula(&corpus[i]), &want[i]) {
                        (Ok(resp), Ok(expected)) => {
                            assert_eq!(
                                *resp.sat, *expected,
                                "{name}/{policy:?}/t{threads}: sat set of {:?} diverged",
                                corpus[i]
                            );
                            assert_eq!(resp.count, expected.count());
                        }
                        (Err(QueryError::Unsound(_)), Err(())) => {}
                        (got, _) => panic!(
                            "{name}/{policy:?}/t{threads}: outcome class diverged for {:?}: \
                             service said {:?}",
                            corpus[i],
                            got.map(|r| r.count)
                        ),
                    }
                }
            });
        }
    });
}

#[test]
fn concurrent_results_match_sequential_across_matrix() {
    let fixtures = [token_fixture(), broadcast_fixture(), generals_fixture()];
    for fx in &fixtures {
        for policy in [QuotientPolicy::Expand, QuotientPolicy::Reject] {
            for threads in [1, 4, 16] {
                assert_concurrent_matches_sequential(fx, policy, threads);
            }
        }
    }
}

/// All threads hammering the *same* formula simultaneously: results
/// must still match, and every request must be accounted for as either
/// a leader or a coalesced follower.
#[test]
fn identical_inflight_requests_coalesce_and_agree() {
    let fx = token_fixture();
    let f = Formula::common(fx.corpus[0].clone());
    let mut seq = Evaluator::with_symmetry_policy(
        &fx.universe,
        &fx.interp,
        fx.orbits.as_ref().expect("quotient fixture"),
        QuotientPolicy::Expand,
    );
    let want = seq.try_sat_set(&f).expect("sound formula");

    let threads = 16;
    let service = QueryService::start(4);
    service.register_quotient(
        fx.name,
        Arc::clone(&fx.universe),
        Arc::clone(&fx.interp),
        Arc::clone(fx.orbits.as_ref().expect("quotient fixture")),
        QuotientPolicy::Expand,
    );
    let barrier = std::sync::Barrier::new(threads);
    std::thread::scope(|s| {
        for _ in 0..threads {
            let service = &service;
            let barrier = &barrier;
            let f = &f;
            let want = &want;
            let name = fx.name;
            s.spawn(move || {
                let session = service.session(name).expect("registered scenario");
                barrier.wait();
                let resp = session.query_formula(f).expect("sound formula");
                assert_eq!(*resp.sat, *want, "coalesced result diverged");
            });
        }
    });

    let snap = service.snapshot(fx.name).expect("registered scenario");
    let stats = snap.sat_cache_stats();
    assert!(
        stats.hits + stats.misses > 0,
        "the shared sat cache must have been consulted"
    );
    // every request either led, coalesced behind a leader, or hit the
    // sat cache after an earlier settle — never a fourth path
    assert!(snap.coalesced() <= (threads as u64 - 1));
}

/// Sessions surviving the service's drop get a typed error, not a hang.
#[test]
fn dropped_service_fails_queries_with_typed_error() {
    let fx = generals_fixture();
    let service = QueryService::start(2);
    service.register(fx.name, Arc::clone(&fx.universe), Arc::clone(&fx.interp));
    let session = service.session(fx.name).expect("registered scenario");
    assert!(session.query_formula(&fx.corpus[0]).is_ok());
    drop(service);
    assert_eq!(
        session.query_formula(&fx.corpus[0]).unwrap_err(),
        QueryError::ServiceStopped
    );
}

/// The formula-text front door: parsed queries agree with constructed
/// ones, and parse failures surface as typed errors.
#[test]
fn text_queries_agree_with_constructed_formulas() {
    let fx = generals_fixture();
    let service = QueryService::start(2);
    service.register(fx.name, Arc::clone(&fx.universe), Arc::clone(&fx.interp));
    let session = service.session(fx.name).expect("registered scenario");

    let text = session.query("K{p1} attack-planned").expect("parses");
    let constructed = session
        .query_formula(&Formula::knows(
            ProcessSet::from_indices([1]),
            fx.corpus[0].clone(),
        ))
        .expect("evaluates");
    assert_eq!(*text.sat, *constructed.sat);

    assert!(matches!(
        session.query("K{p1} no-such-atom"),
        Err(QueryError::Parse(_))
    ));
    assert!(matches!(session.query("K{p1"), Err(QueryError::Parse(_))));
}

/// Plain sequential enumeration and the service agree too (the plain
/// snapshot path has no orbit machinery to hide behind).
#[test]
fn plain_enumerated_universe_round_trips() {
    let pu = enumerate(&token_bus::TokenBus::new(2), EnumerationLimits::depth(6))
        .expect("plain enumeration");
    let mut interp = Interpretation::new();
    let atoms = token_bus::token_atoms(&mut interp, 2);
    let universe = Arc::new(pu.into_universe());
    let interp = Arc::new(interp);

    let mut seq = Evaluator::new(&universe, &interp);
    let f = Formula::knows(ProcessSet::from_indices([0]), atoms[0].clone());
    let want = seq.sat_set(&f);

    let service = QueryService::start(1);
    service.register("plain", Arc::clone(&universe), Arc::clone(&interp));
    let session = service.session("plain").expect("registered scenario");
    let resp = session
        .query_formula(&f)
        .expect("plain queries are infallible");
    assert_eq!(*resp.sat, want);
    assert_eq!(resp.universe_len, universe.len());
}
