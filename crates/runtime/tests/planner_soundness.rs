//! Planner soundness: CSE'd, folded, bottom-up plans must be
//! **pointwise equal** to naive recursive evaluation.
//!
//! The ground truth here is deliberately primitive: a recursive
//! evaluator with no memoization, no folding, no class caches — `[P]`
//! classes brute-forced through [`Computation::agrees_on`] and common
//! knowledge through reachability closure over the union of the
//! single-process relations. Whatever the planner reorders, dedups or
//! folds, [`hpl_runtime::execute`] must land on exactly the same
//! bit-sets, across an adversarial random corpus in the PR 5 style
//! (most draws break the quotient contract on purpose).

use hpl_core::{
    enumerate_sharded, CompSet, CoreError, EnumerationLimits, Evaluator, Formula, Interpretation,
    QuotientPolicy, ShardConfig, Universe,
};
use hpl_model::{Computation, ProcessId, ProcessSet};
use hpl_protocols::token_bus::BroadcastBus;
use hpl_runtime::{execute, fold, plan};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

// ---------------------------------------------------------------------
// Naive recursive reference evaluator
// ---------------------------------------------------------------------

/// `{y : x [P] y}` by brute force, straight off the paper's definition.
fn naive_class(u: &Universe, x: &Computation, p: ProcessSet) -> CompSet {
    let mut s = CompSet::new(u.len());
    for (id, y) in u.iter() {
        if x.agrees_on(y, p) {
            s.insert(id.index());
        }
    }
    s
}

/// Reachability closure of `x` under the union of all single-process
/// relations — the component common knowledge quantifies over.
fn naive_component(u: &Universe, start: usize) -> CompSet {
    let n = u.len();
    let comps: Vec<&Computation> = u.iter().map(|(_, c)| c).collect();
    let mut seen = CompSet::new(n);
    seen.insert(start);
    let mut frontier = vec![start];
    while let Some(i) = frontier.pop() {
        for j in 0..n {
            if !seen.contains(j)
                && (0..u.system_size()).any(|p| comps[i].agrees_on_process(comps[j], pid(p)))
            {
                seen.insert(j);
                frontier.push(j);
            }
        }
    }
    seen
}

/// Naive recursive semantics: no memo, no folding, no shared state.
fn naive(u: &Universe, interp: &Interpretation, f: &Formula) -> CompSet {
    let n = u.len();
    let knows = |sg: &CompSet, p: ProcessSet| {
        let mut s = CompSet::new(n);
        for (id, x) in u.iter() {
            if naive_class(u, x, p).is_subset(sg) {
                s.insert(id.index());
            }
        }
        s
    };
    match f {
        Formula::True => CompSet::full(n),
        Formula::False => CompSet::new(n),
        Formula::Atom(id) => {
            let mut s = CompSet::new(n);
            for (i, c) in u.iter() {
                if interp.eval(*id, c) {
                    s.insert(i.index());
                }
            }
            s
        }
        Formula::Not(g) => {
            let mut s = naive(u, interp, g);
            s.complement();
            s
        }
        Formula::And(gs) => {
            let mut s = CompSet::full(n);
            for g in gs {
                s.intersect_with(&naive(u, interp, g));
            }
            s
        }
        Formula::Or(gs) => {
            let mut s = CompSet::new(n);
            for g in gs {
                s.union_with(&naive(u, interp, g));
            }
            s
        }
        Formula::Implies(a, b) => {
            let mut s = naive(u, interp, a);
            s.complement();
            s.union_with(&naive(u, interp, b));
            s
        }
        Formula::Iff(a, b) => {
            let mut s = naive(u, interp, a);
            s.xor_with(&naive(u, interp, b));
            s.complement();
            s
        }
        Formula::Knows(p, g) => knows(&naive(u, interp, g), *p),
        Formula::Sure(p, g) => {
            let sg = naive(u, interp, g);
            let mut not_sg = sg.clone();
            not_sg.complement();
            let mut s = knows(&sg, *p);
            s.union_with(&knows(&not_sg, *p));
            s
        }
        Formula::Everyone(g) => {
            let sg = naive(u, interp, g);
            let mut s = CompSet::full(n);
            for p in 0..u.system_size() {
                s.intersect_with(&knows(&sg, ProcessSet::singleton(pid(p))));
            }
            s
        }
        Formula::Common(g) => {
            let sg = naive(u, interp, g);
            let mut s = CompSet::new(n);
            for i in 0..n {
                if naive_component(u, i).is_subset(&sg) {
                    s.insert(i);
                }
            }
            s
        }
    }
}

// ---------------------------------------------------------------------
// Adversarial corpus (PR 5 idiom): honest invariance declarations,
// random formulas that mostly break the quotient contract
// ---------------------------------------------------------------------

fn adversarial_interp() -> (Interpretation, Vec<Formula>) {
    let mut interp = Interpretation::new();
    let atoms = vec![
        Formula::atom(interp.register_invariant("nonempty", |c| !c.is_empty())),
        Formula::atom(interp.register_invariant("any-send", |c| c.sends() >= 1)),
        Formula::atom(interp.register("p1-acted", |c| c.iter().any(|e| e.is_on(pid(1))))),
        Formula::atom(interp.register("p2-quiet", |c| c.iter().all(|e| !e.is_on(pid(2))))),
    ];
    (interp, atoms)
}

/// Random formulas over invariant + dependent atoms, all operators,
/// arbitrary process sets; `True`/`False` leaves feed the folder.
fn random_formula(rng: &mut StdRng, atoms: &[Formula], n: usize, depth: usize) -> Formula {
    if depth == 0 {
        return match rng.random_range(0..6) {
            0 => Formula::True,
            1 => Formula::False,
            _ => atoms[rng.random_range(0..atoms.len())].clone(),
        };
    }
    let any_set = |rng: &mut StdRng| {
        let bits = rng.random_range(1..(1u32 << n));
        ProcessSet::from_indices((0..n).filter(|i| bits >> i & 1 == 1))
    };
    match rng.random_range(0..9) {
        0 => random_formula(rng, atoms, n, depth - 1).not(),
        1 => random_formula(rng, atoms, n, depth - 1).and(random_formula(rng, atoms, n, depth - 1)),
        2 => random_formula(rng, atoms, n, depth - 1).or(random_formula(rng, atoms, n, depth - 1)),
        3 => random_formula(rng, atoms, n, depth - 1).implies(random_formula(
            rng,
            atoms,
            n,
            depth - 1,
        )),
        4 => random_formula(rng, atoms, n, depth - 1).iff(random_formula(rng, atoms, n, depth - 1)),
        5 => Formula::knows(any_set(rng), random_formula(rng, atoms, n, depth - 1)),
        6 => Formula::sure(any_set(rng), random_formula(rng, atoms, n, depth - 1)),
        7 => Formula::everyone(random_formula(rng, atoms, n, depth - 1)),
        _ => Formula::common(random_formula(rng, atoms, n, depth - 1)),
    }
}

struct Setup {
    full: Universe,
    quotient: Universe,
    orbits: hpl_core::Orbits,
    interp: Interpretation,
    atoms: Vec<Formula>,
}

fn setup() -> Setup {
    let limits = EnumerationLimits::depth(4);
    let full = enumerate_sharded(
        &BroadcastBus::with_chatter(3, 1),
        limits,
        &ShardConfig::with_shards(2),
    )
    .expect("within budget");
    let q = enumerate_sharded(
        &BroadcastBus::with_chatter(3, 1),
        limits,
        &ShardConfig::with_shards(2).quotient(),
    )
    .expect("within budget");
    let orbits = q.orbits.expect("quotient mode yields orbits");
    let (interp, atoms) = adversarial_interp();
    Setup {
        full: full.universe.into_universe(),
        quotient: q.universe.into_universe(),
        orbits,
        interp,
        atoms,
    }
}

// ---------------------------------------------------------------------
// The suite
// ---------------------------------------------------------------------

/// Plain universes: `execute(plan(f))` pointwise-equals the naive
/// recursive reference, for every random draw. This pins down constant
/// folding, common-subformula dedup and the bottom-up schedule all at
/// once — any unsound rewrite shows up as a flipped bit.
#[test]
fn planned_evaluation_matches_naive_reference_on_plain_universes() {
    let s = setup();
    for seed in 0..120u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = random_formula(&mut rng, &s.atoms, 3, 1 + (seed % 3) as usize);
        let want = naive(&s.full, &s.interp, &f);

        let p = plan(&f, &s.interp, None);
        let mut eval = Evaluator::new(&s.full, &s.interp);
        let got = execute(&p, &mut eval).expect("plain evaluation is total");
        assert_eq!(
            got,
            want,
            "seed {seed}: plan of {f:?} diverged from naive reference \
             (folded root {:?})",
            p.root()
        );
    }
}

/// Folding alone is semantically exact: `naive(fold(f)) == naive(f)`.
#[test]
fn folding_is_semantically_exact() {
    let s = setup();
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(0xF0 ^ seed.wrapping_mul(2654435761));
        let f = random_formula(&mut rng, &s.atoms, 3, 1 + (seed % 3) as usize);
        let folded = fold(&f);
        assert_eq!(
            naive(&s.full, &s.interp, &folded),
            naive(&s.full, &s.interp, &f),
            "seed {seed}: folding changed the meaning of {f:?} -> {folded:?}"
        );
    }
}

/// Quotient universes under `Expand`: the planned evaluation matches a
/// direct (unplanned) `try_sat_set` of the original formula, which PR 5
/// certified against the full universe.
#[test]
fn planned_quotient_evaluation_matches_direct_under_expand() {
    let s = setup();
    for seed in 0..120u64 {
        let mut rng = StdRng::seed_from_u64(0xE ^ seed.wrapping_mul(40503));
        let f = random_formula(&mut rng, &s.atoms, 3, 1 + (seed % 3) as usize);

        let mut direct = Evaluator::with_symmetry_policy(
            &s.quotient,
            &s.interp,
            &s.orbits,
            QuotientPolicy::Expand,
        );
        let want = direct.try_sat_set(&f).expect("Expand is total");

        let p = plan(&f, &s.interp, Some(s.orbits.generators()));
        let mut eval = Evaluator::with_symmetry_policy(
            &s.quotient,
            &s.interp,
            &s.orbits,
            QuotientPolicy::Expand,
        );
        let got = execute(&p, &mut eval).expect("Expand is total");
        assert_eq!(got, want, "seed {seed}: planned Expand diverged for {f:?}");
    }
}

/// Quotient universes under `Reject`: the planned evaluation errors
/// exactly when direct evaluation of the **folded** formula errors
/// (the folded root is what the service evaluates and reports; folding
/// may soundly discharge vacuous out-of-contract subtrees like
/// `K_P(true)`, so the unfolded syntax is not the contract). Given the
/// same folded input, the bottom-up schedule may not reject more or
/// less than direct recursion — the soundness lattice is monotone —
/// and both must agree bit-for-bit when they admit.
#[test]
fn planned_quotient_evaluation_matches_direct_under_reject() {
    let s = setup();
    let mut rejected = 0usize;
    for seed in 0..120u64 {
        let mut rng = StdRng::seed_from_u64(0xBAD ^ seed.wrapping_mul(7919));
        let f = random_formula(&mut rng, &s.atoms, 3, 1 + (seed % 3) as usize);

        let mut direct = Evaluator::with_symmetry_policy(
            &s.quotient,
            &s.interp,
            &s.orbits,
            QuotientPolicy::Reject,
        );
        let want = direct.try_sat_set(&fold(&f));

        let p = plan(&f, &s.interp, Some(s.orbits.generators()));
        let mut eval = Evaluator::with_symmetry_policy(
            &s.quotient,
            &s.interp,
            &s.orbits,
            QuotientPolicy::Reject,
        );
        match (execute(&p, &mut eval), want) {
            (Ok(got), Ok(want)) => {
                assert_eq!(got, want, "seed {seed}: planned Reject diverged for {f:?}");
            }
            (Err(CoreError::QuotientUnsound(_)), Err(CoreError::QuotientUnsound(_))) => {
                rejected += 1;
            }
            (got, want) => panic!(
                "seed {seed}: outcome class diverged for {f:?}: plan said \
                 {:?}, direct said {:?}",
                got.map(|s| s.count()),
                want.map(|s| s.count())
            ),
        }
    }
    assert!(
        rejected > 0,
        "the adversarial corpus must exercise the Reject path"
    );
}

/// Shared subtrees: a formula whose subtree appears four times is
/// deduplicated by the planner and still evaluates exactly.
#[test]
fn deduplicated_shared_subtrees_evaluate_exactly() {
    let s = setup();
    let g = s.atoms[0].clone().and(s.atoms[2].clone());
    let f = Formula::knows(ProcessSet::from_indices([0]), g.clone())
        .or(g.clone().not())
        .and(g.clone().implies(g.clone()));

    let p = plan(&f, &s.interp, None);
    assert!(
        p.stats().deduped > 0,
        "the repeated subtree must be deduplicated, stats: {:?}",
        p.stats()
    );
    let mut eval = Evaluator::new(&s.full, &s.interp);
    let got = execute(&p, &mut eval).expect("plain evaluation is total");
    assert_eq!(got, naive(&s.full, &s.interp, &f));
}
