//! Warm growth of the query service: register a scenario at a shallow
//! horizon, grow its universe in place with `extend_sharded`, hot-swap
//! the snapshot via `reregister`, and certify that
//!
//! * answers from the swapped service are **byte-identical** to a
//!   fresh service registered directly on the grown universe,
//! * propositional satisfaction-cache entries survive the swap (the
//!   first post-swap query is a cache *hit*, observed on the snapshot's
//!   hit counters and the `service.sat_carried` telemetry counter),
//! * sessions opened before the swap notice via `is_current` and keep
//!   answering against their pinned snapshot, and
//! * disconnected growth maps are rejected with `GrowthMismatch`.

use hpl_core::{
    enumerate_sharded, extend_sharded, EnumerationLimits, Formula, GrowthMap, Interpretation,
    QuotientPolicy, ShardConfig, Universe,
};
use hpl_model::ProcessSet;
use hpl_protocols::token_bus::{self, TokenBus};
use hpl_runtime::{QueryError, QueryService};
use std::sync::Arc;

const SHALLOW: usize = 6;
const DEEP: usize = 8;

/// Shallow + grown universes of the 3-process token bus, the growth
/// map connecting them, and the shared interpretation.
struct Grown {
    old_universe: Arc<Universe>,
    new_universe: Arc<Universe>,
    growth: GrowthMap,
    interp: Arc<Interpretation>,
    atoms: Vec<Formula>,
}

fn grow_token_bus(shards: usize) -> Grown {
    let protocol = TokenBus::with_chatter(3, 1);
    let cfg = ShardConfig::with_shards(shards).checkpoint();
    let shallow = enumerate_sharded(&protocol, EnumerationLimits::depth(SHALLOW), &cfg)
        .expect("shallow enumeration");
    let frontier = shallow.frontier.as_ref().expect("checkpoint requested");
    let grown = extend_sharded(&protocol, frontier, EnumerationLimits::depth(DEEP), &cfg)
        .expect("extension");
    let mut interp = Interpretation::new();
    let atoms = token_bus::token_atoms(&mut interp, 3);
    Grown {
        old_universe: Arc::new(shallow.universe.into_universe()),
        new_universe: Arc::new(grown.universe.into_universe()),
        growth: grown.growth.expect("extension yields a growth map"),
        interp: Arc::new(interp),
        atoms,
    }
}

/// Propositional formulas (carry-forward candidates) followed by
/// epistemic ones (must be recomputed on the grown universe).
fn corpus(atoms: &[Formula]) -> Vec<Formula> {
    let t0 = atoms[0].clone();
    let t1 = atoms[1].clone();
    let p0 = ProcessSet::from_indices([0]);
    let p1 = ProcessSet::from_indices([1]);
    vec![
        t0.clone(),
        t0.clone().and(t1.clone()),
        t0.clone().or(t1.clone().not()),
        t1.clone().implies(t0.clone()),
        Formula::knows(p0, t0.clone()),
        Formula::knows(p1, t1.clone()),
        Formula::sure(p1, t0.clone()),
        Formula::everyone(t0.clone()),
        Formula::common(t0),
    ]
}

#[test]
fn hot_swap_matches_fresh_service_and_reuses_sat_entries() {
    hpl_telemetry::set_enabled(true);
    let g = grow_token_bus(2);
    let queries = corpus(&g.atoms);

    let service = QueryService::start(2);
    let old_gen = service.register("bus", Arc::clone(&g.old_universe), Arc::clone(&g.interp));
    let stale_session = service.session("bus").expect("registered");
    assert!(stale_session.is_current());

    // warm the shallow snapshot's caches
    for f in &queries {
        stale_session.query_formula(f).expect("warm query");
    }

    // hot-swap to the grown universe
    let new_gen = service
        .reregister(
            "bus",
            Arc::clone(&g.new_universe),
            Arc::clone(&g.interp),
            &g.growth,
        )
        .expect("growth map connects the snapshots");
    assert_eq!(new_gen, g.new_universe.generation());
    assert_ne!(new_gen, old_gen);
    assert!(
        hpl_telemetry::snapshot().counter("service.sat_carried") >= 4,
        "the four propositional corpus entries should carry"
    );

    // the pre-swap session keeps its pinned snapshot, and knows it
    assert!(!stale_session.is_current());
    assert_eq!(stale_session.generation(), old_gen);
    let old_resp = stale_session
        .query_formula(&queries[0])
        .expect("stale sessions keep answering");
    assert_eq!(old_resp.generation, old_gen);
    assert_eq!(old_resp.universe_len, g.old_universe.len());

    // a fresh session serves the grown universe...
    let session = service.session("bus").expect("still registered");
    assert!(session.is_current());
    assert_eq!(session.generation(), new_gen);

    // ...and its first propositional query is answered from the
    // carried cache: hits move, misses don't
    let snap = service.snapshot("bus").expect("registered");
    let before = snap.sat_cache_stats();
    let carried_resp = session.query_formula(&queries[1]).expect("carried query");
    let after = snap.sat_cache_stats();
    assert_eq!(carried_resp.generation, new_gen);
    assert!(
        after.hits > before.hits,
        "carried propositional entry should hit ({before:?} -> {after:?})"
    );

    // every answer matches a cold service registered on the grown
    // universe directly — including the carried ones
    let fresh = QueryService::start(2);
    fresh.register("bus", Arc::clone(&g.new_universe), Arc::clone(&g.interp));
    let fresh_session = fresh.session("bus").expect("registered");
    for f in &queries {
        let warm = session.query_formula(f).expect("warm service");
        let cold = fresh_session.query_formula(f).expect("fresh service");
        assert_eq!(warm.count, cold.count, "count for {}", f.display_raw());
        assert_eq!(
            warm.sat.words(),
            cold.sat.words(),
            "satisfaction set for {}",
            f.display_raw()
        );
        assert_eq!(warm.universe_len, g.new_universe.len());
    }
}

#[test]
fn quotient_hot_swap_matches_fresh_service() {
    let protocol = TokenBus::with_chatter(3, 1);
    let cfg = ShardConfig::with_shards(2).quotient().checkpoint();
    let shallow = enumerate_sharded(&protocol, EnumerationLimits::depth(SHALLOW), &cfg)
        .expect("shallow quotient enumeration");
    let frontier = shallow.frontier.as_ref().expect("checkpoint requested");
    let grown = extend_sharded(&protocol, frontier, EnumerationLimits::depth(DEEP), &cfg)
        .expect("quotient extension");
    let growth = grown.growth.expect("growth map");
    let new_orbits = Arc::new(grown.orbits.expect("quotient orbits"));
    let old_orbits = Arc::new(shallow.orbits.expect("quotient orbits"));
    let old_universe = Arc::new(shallow.universe.into_universe());
    let new_universe = Arc::new(grown.universe.into_universe());
    let mut interp = Interpretation::new();
    let atoms = token_bus::token_atoms(&mut interp, 3);
    let interp = Arc::new(interp);
    // sound-on-the-quotient corpus: propositional + invariant-atom
    // knowledge (t0 is the invariant atom)
    let t0 = atoms[0].clone();
    let queries = vec![
        t0.clone(),
        t0.clone().not().or(t0.clone()),
        Formula::knows(ProcessSet::from_indices([0]), t0.clone()),
        Formula::common(t0),
    ];

    let service = QueryService::start(2);
    service.register_quotient(
        "bus",
        Arc::clone(&old_universe),
        Arc::clone(&interp),
        old_orbits,
        QuotientPolicy::Expand,
    );
    let session = service.session("bus").expect("registered");
    for f in &queries {
        session.query_formula(f).expect("warm query");
    }

    let new_gen = service
        .reregister_quotient(
            "bus",
            Arc::clone(&new_universe),
            Arc::clone(&interp),
            Arc::clone(&new_orbits),
            QuotientPolicy::Expand,
            &growth,
        )
        .expect("quotient growth map connects");
    assert!(!session.is_current());

    let fresh = QueryService::start(2);
    fresh.register_quotient(
        "bus",
        Arc::clone(&new_universe),
        Arc::clone(&interp),
        new_orbits,
        QuotientPolicy::Expand,
    );
    let warm_session = service.session("bus").expect("swapped");
    let fresh_session = fresh.session("bus").expect("registered");
    assert_eq!(warm_session.generation(), new_gen);
    for f in &queries {
        let warm = warm_session.query_formula(f).expect("warm service");
        let cold = fresh_session.query_formula(f).expect("fresh service");
        assert_eq!(
            warm.sat.words(),
            cold.sat.words(),
            "satisfaction set for {}",
            f.display_raw()
        );
    }
}

#[test]
fn reregister_rejects_disconnected_growth() {
    let g = grow_token_bus(1);
    let service = QueryService::start(1);

    // nothing registered under the name yet
    assert!(matches!(
        service.reregister(
            "bus",
            Arc::clone(&g.new_universe),
            Arc::clone(&g.interp),
            &g.growth
        ),
        Err(QueryError::UnknownScenario(_))
    ));

    // registered at the *deep* generation: a map starting from the
    // shallow one does not connect
    service.register("bus", Arc::clone(&g.new_universe), Arc::clone(&g.interp));
    let err = service
        .reregister(
            "bus",
            Arc::clone(&g.new_universe),
            Arc::clone(&g.interp),
            &g.growth,
        )
        .expect_err("growth starts at the wrong generation");
    assert!(matches!(err, QueryError::GrowthMismatch(_)), "{err}");

    // correctly anchored source, but the offered universe is not the
    // map's target
    service.register("bus", Arc::clone(&g.old_universe), Arc::clone(&g.interp));
    let err = service
        .reregister(
            "bus",
            Arc::clone(&g.old_universe),
            Arc::clone(&g.interp),
            &g.growth,
        )
        .expect_err("growth ends past the offered universe");
    assert!(matches!(err, QueryError::GrowthMismatch(_)), "{err}");

    // kind change: plain scenario cannot be swapped for a quotient one
    let cfg = ShardConfig::with_shards(1).quotient().checkpoint();
    let protocol = TokenBus::with_chatter(3, 1);
    let shallow = enumerate_sharded(&protocol, EnumerationLimits::depth(SHALLOW), &cfg)
        .expect("quotient enumeration");
    let frontier = shallow.frontier.as_ref().expect("checkpoint");
    let grown = extend_sharded(&protocol, frontier, EnumerationLimits::depth(DEEP), &cfg)
        .expect("extension");
    let q_growth = grown.growth.expect("growth map");
    let q_orbits = Arc::new(grown.orbits.expect("orbits"));
    service.register(
        "qbus",
        Arc::new(shallow.universe.into_universe()),
        Arc::clone(&g.interp),
    );
    let err = service
        .reregister_quotient(
            "qbus",
            Arc::new(grown.universe.into_universe()),
            Arc::clone(&g.interp),
            q_orbits,
            QuotientPolicy::Expand,
            &q_growth,
        )
        .expect_err("kind change must be rejected");
    assert!(matches!(err, QueryError::GrowthMismatch(_)), "{err}");
}
