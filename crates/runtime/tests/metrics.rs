//! The service's observability surfaces: the Prometheus-style metrics
//! snapshot a `Session` exposes (what `repro serve`'s `:stats` prints)
//! and the satisfaction-cache high-water warning.

use hpl_core::{enumerate, EnumerationLimits, Interpretation, Universe};
use hpl_protocols::token_bus::{self, TokenBus};
use hpl_runtime::QueryService;
use std::sync::Arc;

fn snapshot_parts() -> (Arc<Universe>, Arc<Interpretation>) {
    let pu = enumerate(&TokenBus::new(3), EnumerationLimits::depth(8)).expect("within budget");
    let mut interp = Interpretation::new();
    token_bus::token_atoms(&mut interp, 3);
    (Arc::new(pu.into_universe()), Arc::new(interp))
}

/// Reads the value of `metric{scenario="..."} value` from the
/// exposition text.
fn gauge_value(text: &str, metric: &str) -> Option<u64> {
    text.lines()
        .find(|l| l.starts_with(&format!("{metric}{{")))?
        .rsplit(' ')
        .next()?
        .parse()
        .ok()
}

#[test]
fn metrics_snapshot_exposes_cache_and_admission_gauges() {
    let (universe, interp) = snapshot_parts();
    let universe_len = universe.len() as u64;
    let service = QueryService::start(1);
    service.register("bus", universe, interp);
    let session = service.session("bus").expect("registered");

    // same formula twice: the second answer must come from the cache
    session.query("token-at-p0").expect("evaluates");
    session.query("token-at-p0").expect("evaluates");

    let text = session.metrics_snapshot();
    for metric in [
        "hpl_sat_cache_hits",
        "hpl_sat_cache_misses",
        "hpl_sat_cache_entries",
        "hpl_sat_cache_resident_bytes",
        "hpl_admission_coalesced",
        "hpl_admission_led",
        "hpl_universe_len",
        "hpl_generation",
    ] {
        assert!(
            text.contains(&format!("# TYPE {metric} gauge")),
            "missing TYPE line for {metric} in:\n{text}"
        );
        assert!(
            text.contains(&format!("{metric}{{scenario=\"bus\"}}")),
            "missing sample for {metric} in:\n{text}"
        );
    }
    assert!(gauge_value(&text, "hpl_sat_cache_hits").expect("parses") >= 1);
    assert!(gauge_value(&text, "hpl_sat_cache_entries").expect("parses") >= 1);
    assert!(gauge_value(&text, "hpl_sat_cache_resident_bytes").expect("parses") > 0);
    assert_eq!(
        gauge_value(&text, "hpl_universe_len"),
        Some(universe_len),
        "universe gauge must report the snapshot's size"
    );
}

#[test]
fn sat_cache_high_water_mark_trips_once() {
    let (universe, interp) = snapshot_parts();
    let service = QueryService::start(1);
    service.register("bus", universe, interp);
    // 1 byte: any cached satisfaction set is past the mark
    service.set_sat_cache_high_water(1);
    let session = service.session("bus").expect("registered");
    let snap = service.snapshot("bus").expect("registered");
    assert!(
        !snap.sat_cache_warned(),
        "must not warn before any query caches anything"
    );
    session.query("token-at-p0").expect("evaluates");
    assert!(
        snap.sat_cache_warned(),
        "a cached entry past the high-water mark must trip the warning"
    );
}

#[test]
fn high_water_mark_defaults_leave_small_caches_quiet() {
    let (universe, interp) = snapshot_parts();
    let service = QueryService::start(1);
    service.register("bus", universe, interp);
    let session = service.session("bus").expect("registered");
    session.query("token-at-p0").expect("evaluates");
    let snap = service.snapshot("bus").expect("registered");
    assert!(
        !snap.sat_cache_warned(),
        "a few kilobytes must stay far below the default 64 MiB mark"
    );
}
