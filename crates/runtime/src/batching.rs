//! Admission control: coalescing identical in-flight sat-set requests.
//!
//! When several clients ask for the same `(generation, formula)` while
//! the first request is still being evaluated, only the **leader** (the
//! first arrival) submits work to the pool; every later arrival becomes
//! a **follower** holding a one-shot receiver, and the leader broadcasts
//! its outcome to all of them on completion. Combined with the
//! cross-query [`SatCache`](hpl_core::SatCache) (which serves repeats
//! *after* completion) this bounds the evaluation cost of a thundering
//! herd of identical queries to a single evaluation.
//!
//! The map key is the **folded plan root**
//! ([`QueryPlan::root`](crate::planner::QueryPlan::root)), so requests
//! that differ only by constant clutter (`φ ∧ true` vs `φ`) coalesce
//! too.

use crossbeam::channel::{unbounded, Receiver, Sender};
use hpl_core::Formula;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// The outcome of admitting a request.
#[derive(Debug)]
pub enum Ticket<T> {
    /// First in-flight arrival: evaluate, then
    /// [`settle`](Admission::settle) with the outcome.
    Leader,
    /// A duplicate of an in-flight request: block on the receiver for
    /// the leader's broadcast. A disconnect (the leader died without
    /// settling) means the follower must evaluate for itself.
    Follower(Receiver<T>),
}

/// The followers waiting on each in-flight `(generation, formula)`.
type Inflight<T> = HashMap<(u64, Formula), Vec<Sender<T>>>;

/// In-flight request coalescing, keyed by `(generation, formula)`.
///
/// `T` is the broadcast outcome type; it must be `Clone` so one
/// leader's result can fan out to every follower.
#[derive(Debug, Default)]
pub struct Admission<T> {
    inflight: Mutex<Inflight<T>>,
    coalesced: AtomicU64,
    led: AtomicU64,
}

impl<T: Clone> Admission<T> {
    /// Creates an empty admission table.
    #[must_use]
    pub fn new() -> Self {
        Admission {
            inflight: Mutex::new(HashMap::new()),
            coalesced: AtomicU64::new(0),
            led: AtomicU64::new(0),
        }
    }

    /// Admits a request for `f` over `generation`: the first in-flight
    /// arrival leads, duplicates follow.
    #[must_use]
    pub fn admit(&self, generation: u64, f: &Formula) -> Ticket<T> {
        // held to function end; nothing under it blocks (the follower
        // channel is created, not received on)
        // analyze:acquire(admission.inflight)
        let mut inflight = self.inflight.lock();
        match inflight.entry((generation, f.clone())) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let (tx, rx) = unbounded();
                e.get_mut().push(tx);
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                Ticket::Follower(rx)
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(Vec::new());
                self.led.fetch_add(1, Ordering::Relaxed);
                Ticket::Leader
            }
        }
    }

    /// Settles a led request: removes the in-flight entry and
    /// broadcasts `outcome` to every follower that joined while it was
    /// evaluating. The leader **must** call this on every path (success
    /// or error) — an unsettled entry would leave followers blocked
    /// until their receivers disconnect.
    pub fn settle(&self, generation: u64, f: &Formula, outcome: &T) {
        // the map guard is a statement temporary — dropped before the
        // broadcast sends below
        // analyze:acquire(admission.inflight) analyze:release(admission.inflight)
        let waiters = self
            .inflight
            .lock()
            .remove(&(generation, f.clone()))
            .unwrap_or_default();
        for w in waiters {
            // a follower that gave up (dropped its receiver) is fine
            let _ = w.send(outcome.clone());
        }
    }

    /// Requests that joined an in-flight leader instead of evaluating.
    #[must_use]
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Requests that led an evaluation.
    #[must_use]
    pub fn led(&self) -> u64 {
        self.led.load(Ordering::Relaxed)
    }

    /// Number of requests currently in flight (for tests).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.inflight.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_requests_coalesce_until_settled() {
        let adm: Admission<u32> = Admission::new();
        let f = Formula::True;
        assert!(matches!(adm.admit(7, &f), Ticket::Leader));
        let Ticket::Follower(rx) = adm.admit(7, &f) else {
            panic!("second arrival must follow");
        };
        // a different generation is a different request
        assert!(matches!(adm.admit(8, &f), Ticket::Leader));
        assert_eq!(adm.in_flight(), 2);

        adm.settle(7, &f, &41);
        assert_eq!(rx.recv(), Ok(41));
        assert_eq!(adm.in_flight(), 1);
        // after settling, the next identical request leads again
        assert!(matches!(adm.admit(7, &f), Ticket::Leader));
        assert_eq!(adm.coalesced(), 1);
        assert_eq!(adm.led(), 3);
    }
}
