//! The query planner: constant folding, common-subformula
//! deduplication, and quotient-vs-full selection per subtree.
//!
//! A [`QueryPlan`] is a bottom-up evaluation schedule over the
//! **distinct** subformulas of a (constant-folded) formula. Executing
//! the schedule against an [`Evaluator`] walks children strictly before
//! parents, so every recursive satisfaction-set lookup during a parent
//! step hits the memo — shared subtrees are computed once no matter how
//! often they occur. On quotient snapshots each step also carries the
//! PR 5 soundness verdict ([`classify_subformulas`]), so the plan
//! records in advance which subtrees stay on the quotient fast path and
//! which will take the policy fallback (orbit expansion under
//! [`QuotientPolicy::Expand`](hpl_core::QuotientPolicy::Expand), typed
//! rejection under
//! [`QuotientPolicy::Reject`](hpl_core::QuotientPolicy::Reject)).
//!
//! Every folding rule is a semantic identity of the paper's operators
//! over finite universes — notably `K_P(false) = false` because every
//! `[P]`-class contains its own base computation, and
//! `Sure_P(const) = true` because `sure` is `K(b) ∨ K(¬b)` (§4.2).
//! Plans therefore evaluate pointwise-equal to naive recursion on the
//! unfolded formula (certified by the `planner_soundness` suite).

use hpl_core::soundness::classify_subformulas;
use hpl_core::{CompSet, CoreError, Evaluator, Formula, Interpretation, Invariance};
use hpl_model::Permutation;

/// How one plan step evaluates on the snapshot it was planned for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SubtreeMode {
    /// Plain (non-quotient) snapshot: direct evaluation, no contract.
    Direct,
    /// Sound on the quotient fast path (the checker classified the
    /// subtree [`Invariance::Invariant`] or
    /// [`Invariance::ExactAtRepresentatives`]).
    Quotient,
    /// Out of the quotient contract: this subtree takes the policy
    /// fallback — exact orbit expansion under `Expand`, a typed
    /// rejection under `Reject`.
    Fallback,
}

/// One step of the bottom-up schedule: a distinct subformula and the
/// evaluation mode the planner selected for it.
#[derive(Clone, Debug)]
pub struct PlanStep {
    /// The subformula this step computes the satisfaction set of.
    pub formula: Formula,
    /// The selected evaluation mode.
    pub mode: SubtreeMode,
}

/// Summary counters of what planning did, reported per query by the
/// service and aggregated into the bench report.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PlanStats {
    /// Nodes in the formula as submitted.
    pub nodes: usize,
    /// Nodes removed by constant folding.
    pub folded: usize,
    /// Distinct subformulas scheduled (the schedule length).
    pub unique: usize,
    /// Duplicate occurrences eliminated by common-subformula dedup
    /// (post-fold nodes minus schedule length).
    pub deduped: usize,
    /// Steps staying on the quotient fast path.
    pub quotient_steps: usize,
    /// Steps that will take the quotient-policy fallback.
    pub fallback_steps: usize,
}

/// A planned query: the folded root, its bottom-up schedule, and the
/// planning counters.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    root: Formula,
    steps: Vec<PlanStep>,
    stats: PlanStats,
}

impl QueryPlan {
    /// The constant-folded root formula. Two submitted formulas that
    /// fold to the same root are the same query — the admission layer
    /// keys in-flight coalescing on this.
    #[must_use]
    pub fn root(&self) -> &Formula {
        &self.root
    }

    /// The bottom-up schedule (children before parents, root last).
    #[must_use]
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }

    /// Planning counters.
    #[must_use]
    pub fn stats(&self) -> PlanStats {
        self.stats
    }
}

/// Plans `f` for a snapshot: folds constants, deduplicates common
/// subformulas into a bottom-up schedule, and — when `generators`
/// describe the snapshot's symmetry group — selects quotient-vs-full
/// per subtree with the soundness classifier. Pass `None` for plain
/// (non-quotient) snapshots.
#[must_use]
pub fn plan(f: &Formula, interp: &Interpretation, generators: Option<&[Permutation]>) -> QueryPlan {
    let submitted = node_count(f);
    let root = fold(f);
    let kept = node_count(&root);
    let classified = classify_subformulas(&root, interp, generators.unwrap_or(&[]));
    let steps: Vec<PlanStep> = classified
        .into_iter()
        .map(|(formula, verdict)| PlanStep {
            formula,
            mode: match (generators, verdict) {
                (None, _) => SubtreeMode::Direct,
                (Some(_), Invariance::OutOfContract(_)) => SubtreeMode::Fallback,
                (Some(_), _) => SubtreeMode::Quotient,
            },
        })
        .collect();
    let stats = PlanStats {
        nodes: submitted,
        folded: submitted - kept,
        unique: steps.len(),
        deduped: kept - steps.len(),
        quotient_steps: steps
            .iter()
            .filter(|s| s.mode == SubtreeMode::Quotient)
            .count(),
        fallback_steps: steps
            .iter()
            .filter(|s| s.mode == SubtreeMode::Fallback)
            .count(),
    };
    // fold the per-plan counters into the global recorder — the one
    // aggregated reporting path; `PlanStats` stays the per-query view
    if hpl_telemetry::enabled() {
        hpl_telemetry::counter_add("plan.nodes", stats.nodes as u64);
        hpl_telemetry::counter_add("plan.folded", stats.folded as u64);
        hpl_telemetry::counter_add("plan.deduped", stats.deduped as u64);
        hpl_telemetry::counter_add("plan.quotient_steps", stats.quotient_steps as u64);
        hpl_telemetry::counter_add("plan.fallback_steps", stats.fallback_steps as u64);
    }
    QueryPlan { root, steps, stats }
}

/// Executes a plan against an evaluator: walks the schedule bottom-up
/// (each step's satisfaction set lands in the memo before any parent
/// needs it) and returns the root's satisfaction set.
///
/// # Errors
///
/// Propagates
/// [`CoreError::QuotientUnsound`] from a
/// fallback step under
/// [`QuotientPolicy::Reject`](hpl_core::QuotientPolicy::Reject);
/// infallible for every other configuration (root soundness implies
/// subformula soundness — the checker's lattice is monotone).
pub fn execute(plan: &QueryPlan, eval: &mut Evaluator<'_>) -> Result<CompSet, CoreError> {
    let mut last = None;
    for step in plan.steps() {
        last = Some(eval.try_sat_set(&step.formula)?);
    }
    Ok(last.expect("a plan schedules at least its root"))
}

/// Total node count of a formula (duplicates included).
fn node_count(f: &Formula) -> usize {
    match f {
        Formula::True | Formula::False | Formula::Atom(_) => 1,
        Formula::Not(g)
        | Formula::Knows(_, g)
        | Formula::Sure(_, g)
        | Formula::Everyone(g)
        | Formula::Common(g) => 1 + node_count(g),
        Formula::And(gs) | Formula::Or(gs) => 1 + gs.iter().map(node_count).sum::<usize>(),
        Formula::Implies(a, b) | Formula::Iff(a, b) => 1 + node_count(a) + node_count(b),
    }
}

/// Constant-folds a formula. Every rule is a semantic identity over
/// finite universes (see the module docs); the result never contains
/// `true`/`false` except as the whole formula.
#[must_use]
pub fn fold(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Atom(_) => f.clone(),
        Formula::Not(g) => match fold(g) {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            // double negation
            Formula::Not(h) => *h,
            h => Formula::Not(Box::new(h)),
        },
        Formula::And(gs) => {
            let mut kept = Vec::new();
            for g in gs {
                match fold(g) {
                    Formula::True => {}
                    Formula::False => return Formula::False,
                    h => kept.push(h),
                }
            }
            match kept.len() {
                0 => Formula::True,
                1 => kept.pop().expect("len checked"),
                _ => Formula::And(kept),
            }
        }
        Formula::Or(gs) => {
            let mut kept = Vec::new();
            for g in gs {
                match fold(g) {
                    Formula::False => {}
                    Formula::True => return Formula::True,
                    h => kept.push(h),
                }
            }
            match kept.len() {
                0 => Formula::False,
                1 => kept.pop().expect("len checked"),
                _ => Formula::Or(kept),
            }
        }
        Formula::Implies(a, b) => match (fold(a), fold(b)) {
            (Formula::False, _) | (_, Formula::True) => Formula::True,
            (Formula::True, h) => h,
            (h, Formula::False) => fold(&Formula::Not(Box::new(h))),
            (ha, hb) => Formula::Implies(Box::new(ha), Box::new(hb)),
        },
        Formula::Iff(a, b) => match (fold(a), fold(b)) {
            (Formula::True, h) | (h, Formula::True) => h,
            (Formula::False, h) | (h, Formula::False) => fold(&Formula::Not(Box::new(h))),
            (ha, hb) => Formula::Iff(Box::new(ha), Box::new(hb)),
        },
        // K_P(true) = true; K_P(false) = false — every [P]-class
        // contains its own base computation, so the quantifier is
        // never vacuous.
        Formula::Knows(p, g) => match fold(g) {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            h => Formula::Knows(*p, Box::new(h)),
        },
        // Sure_P(b) = K_P(b) ∨ K_P(¬b): true for either constant.
        Formula::Sure(p, g) => match fold(g) {
            Formula::True | Formula::False => Formula::True,
            h => Formula::Sure(*p, Box::new(h)),
        },
        Formula::Everyone(g) => match fold(g) {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            h => Formula::Everyone(Box::new(h)),
        },
        Formula::Common(g) => match fold(g) {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            h => Formula::Common(Box::new(h)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_model::ProcessSet;

    fn atoms() -> (Interpretation, Formula, Formula) {
        let mut interp = Interpretation::new();
        let a = Formula::atom(interp.register("a", |c| c.sends() > 0));
        let b = Formula::atom(interp.register("b", |c| c.receives() > 0));
        (interp, a, b)
    }

    #[test]
    fn folding_collapses_constants() {
        let (_, a, b) = atoms();
        let p = ProcessSet::from_indices([0]);
        assert_eq!(fold(&Formula::True.and(a.clone())), a);
        assert_eq!(fold(&Formula::False.and(a.clone())), Formula::False);
        assert_eq!(fold(&Formula::False.or(b.clone())), b);
        assert_eq!(fold(&a.clone().not().not()), a);
        assert_eq!(
            fold(&Formula::knows(p, Formula::False)),
            Formula::False,
            "K_P(false) is false: classes are never empty"
        );
        assert_eq!(fold(&Formula::sure(p, Formula::False)), Formula::True);
        assert_eq!(fold(&Formula::common(Formula::True)), Formula::True);
        assert_eq!(fold(&Formula::False.implies(a.clone())), Formula::True);
        assert_eq!(fold(&a.clone().implies(Formula::False)), a.clone().not());
        assert_eq!(fold(&a.clone().iff(Formula::False)), a.clone().not());
        // nested: K_P(a & true) folds inside the operator
        let nested = Formula::knows(p, Formula::True.and(a.clone()));
        assert_eq!(fold(&nested), Formula::knows(p, a));
    }

    #[test]
    fn schedule_is_bottom_up_and_deduplicated() {
        let (interp, a, b) = atoms();
        let shared = a.clone().and(b.clone());
        // (a & b) | !(a & b): the conjunction appears twice, scheduled once
        let f = shared.clone().or(shared.clone().not());
        let plan = plan(&f, &interp, None);
        assert_eq!(plan.stats().deduped, 3, "a, b and (a & b) each recur once");
        let steps: Vec<&Formula> = plan.steps().iter().map(|s| &s.formula).collect();
        let pos = |g: &Formula| steps.iter().position(|s| *s == g).expect("scheduled");
        assert!(pos(&a) < pos(&shared));
        assert!(pos(&b) < pos(&shared));
        assert_eq!(steps.last(), Some(&plan.root()), "root is last");
        assert!(plan.steps().iter().all(|s| s.mode == SubtreeMode::Direct));
    }

    #[test]
    fn stats_count_folded_nodes() {
        let (interp, a, _) = atoms();
        let f = Formula::True.and(a.clone()).and(Formula::True);
        let p = plan(&f, &interp, None);
        assert_eq!(p.root(), &a);
        assert_eq!(p.stats().nodes, 5);
        assert_eq!(p.stats().folded, 4);
        assert_eq!(p.stats().unique, 1);
    }
}
