//! Client sessions against a [`QueryService`](crate::QueryService).
//!
//! A [`Session`] pins one scenario snapshot and accepts formula
//! **text**: each query is parsed against the snapshot's
//! interpretation ([`hpl_core::parser`]), planned
//! ([`crate::planner`]), admitted through the coalescing layer
//! ([`crate::batching`]), and evaluated on the service's worker pool.
//! The response carries the satisfaction set plus everything the bench
//! report wants to know about how the query was served.

use crate::batching::Ticket;
use crate::planner::PlanStats;
use crate::service::{Job, JobSlot, Outcome, QueryError, Snapshot};
use crossbeam::channel::unbounded;
use hpl_core::{parse, CompSet, Formula};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A client handle against one registered scenario. Cheap to create
/// (two `Arc` clones); make one per client thread.
#[derive(Debug)]
pub struct Session {
    snapshot: Arc<Snapshot>,
    jobs: JobSlot,
}

/// A served query: the satisfaction set of the folded root formula
/// over the snapshot, plus plan and serving diagnostics.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The scenario the session is bound to.
    pub scenario: String,
    /// The universe generation the result is valid for.
    pub generation: u64,
    /// The constant-folded root formula that was evaluated.
    pub formula: Formula,
    /// The satisfaction set (bit-set over the snapshot's universe).
    pub sat: Arc<CompSet>,
    /// Number of satisfying computations (`sat.count()`).
    pub count: usize,
    /// Universe size, for "k of n" reporting.
    pub universe_len: usize,
    /// `true` if this request coalesced behind an identical in-flight
    /// one instead of evaluating.
    pub coalesced: bool,
    /// What the planner did (folding / dedup / quotient selection).
    pub plan: PlanStats,
    /// End-to-end latency as observed by the client.
    pub elapsed: Duration,
}

impl Session {
    pub(crate) fn new(snapshot: Arc<Snapshot>, jobs: JobSlot) -> Self {
        Session { snapshot, jobs }
    }

    /// The scenario this session is bound to.
    #[must_use]
    pub fn scenario(&self) -> &str {
        self.snapshot.name()
    }

    /// The universe generation this session's results are keyed by.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.snapshot.generation()
    }

    /// The snapshot this session queries.
    #[must_use]
    pub fn snapshot(&self) -> &Arc<Snapshot> {
        &self.snapshot
    }

    /// Whether this session's snapshot is still the one registered
    /// under its scenario name. After a hot-swap
    /// ([`crate::QueryService::reregister`]) this turns `false`: the
    /// session keeps answering against its pinned (old) snapshot, and
    /// the client reopens via [`crate::QueryService::session`] when it
    /// wants the grown universe.
    #[must_use]
    pub fn is_current(&self) -> bool {
        self.snapshot.is_current()
    }

    /// Parses and serves a formula, e.g. `"K{p0} token-at-p0"`.
    ///
    /// # Errors
    ///
    /// [`QueryError::Parse`] on bad syntax or unknown atoms;
    /// otherwise as [`Session::query_formula`].
    pub fn query(&self, text: &str) -> Result<QueryResponse, QueryError> {
        let f = {
            let _parse = hpl_telemetry::span("query.parse");
            parse(text, &self.snapshot.interp).map_err(|e| QueryError::Parse(e.to_string()))?
        };
        self.query_formula(&f)
    }

    /// Serves an already-constructed formula.
    ///
    /// # Errors
    ///
    /// [`QueryError::Unsound`] when a `Reject`-policy quotient snapshot
    /// refuses an out-of-contract formula;
    /// [`QueryError::ServiceStopped`] after the service dropped.
    pub fn query_formula(&self, f: &Formula) -> Result<QueryResponse, QueryError> {
        let _query = hpl_telemetry::span("query");
        hpl_telemetry::counter_add("query.requests", 1);
        // analyze:allow(wall-clock) query-latency telemetry; never affects results
        let start = Instant::now();
        let plan = {
            let _plan = hpl_telemetry::span("query.plan");
            self.snapshot.plan(f)
        };
        let generation = self.snapshot.generation;
        let _eval = hpl_telemetry::span("query.eval");
        let (outcome, coalesced) = match self.snapshot.admission.admit(generation, plan.root()) {
            Ticket::Leader => {
                let outcome = self.submit(&plan);
                // settle on *every* path — an unsettled entry would
                // strand followers until disconnect
                self.snapshot
                    .admission
                    .settle(generation, plan.root(), &outcome);
                (outcome, false)
            }
            // analyze:blocking(admission.broadcast)
            Ticket::Follower(rx) => match rx.recv() {
                Ok(outcome) => (outcome, true),
                // the leader vanished without settling: serve ourselves
                Err(_) => (self.submit(&plan), false),
            },
        };
        drop(_eval);
        let _respond = hpl_telemetry::span("query.respond");
        if coalesced {
            hpl_telemetry::counter_add("query.coalesced", 1);
        }
        let sat = outcome?;
        Ok(QueryResponse {
            scenario: self.snapshot.name().to_owned(),
            generation,
            formula: plan.root().clone(),
            count: sat.count(),
            universe_len: self.snapshot.universe.len(),
            sat,
            coalesced,
            plan: plan.stats(),
            elapsed: start.elapsed(),
        })
    }

    /// A Prometheus-style text exposition of the service's live
    /// counters for this session's scenario: satisfaction-set cache
    /// hits, misses, occupancy and resident-bytes estimate, admission
    /// coalescing, and universe shape — followed by everything the
    /// global telemetry recorder has collected (empty while telemetry
    /// is disabled). This is what the `stats` command of `repro serve`
    /// prints.
    #[must_use]
    pub fn metrics_snapshot(&self) -> String {
        use std::fmt::Write as _;
        let scenario = self.snapshot.name();
        let stats = self.snapshot.sat_cache_stats();
        let mut out = String::new();
        let mut gauge = |name: &str, v: u64| {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name}{{scenario=\"{scenario}\"}} {v}");
        };
        gauge("hpl_sat_cache_hits", stats.hits);
        gauge("hpl_sat_cache_misses", stats.misses);
        gauge("hpl_sat_cache_entries", stats.entries as u64);
        gauge("hpl_sat_cache_resident_bytes", stats.resident_bytes as u64);
        gauge("hpl_sat_cache_evictions", stats.evictions);
        gauge("hpl_sat_cache_capacity_bytes", stats.capacity_bytes as u64);
        gauge("hpl_admission_coalesced", self.snapshot.coalesced());
        gauge("hpl_admission_led", self.snapshot.led());
        gauge("hpl_universe_len", self.snapshot.universe.len() as u64);
        gauge("hpl_generation", self.snapshot.generation);
        out.push_str(&hpl_telemetry::snapshot().prometheus_text());
        out
    }

    /// Ships a plan to the worker pool and blocks for the outcome.
    /// The sender lives in the service's shared slot — never in the
    /// session — so a dropped service means an empty slot here (fail
    /// fast), not a channel held open past the pool's shutdown.
    fn submit(&self, plan: &crate::planner::QueryPlan) -> Outcome {
        let (tx, rx) = unbounded();
        let sent = {
            // analyze:acquire(service.job_slot)
            let guard = self.jobs.lock();
            match guard.as_ref() {
                Some(jobs) => jobs
                    .send(Job {
                        snapshot: Arc::clone(&self.snapshot),
                        plan: plan.clone(),
                        reply: tx,
                        // analyze:allow(wall-clock) queue-wait telemetry, gated on the recorder
                        submitted: hpl_telemetry::enabled().then(Instant::now),
                    })
                    .is_ok(),
                None => false,
            }
            // the slot guard drops with the block — before we wait
            // analyze:release(service.job_slot)
        };
        if !sent {
            return Err(QueryError::ServiceStopped);
        }
        // analyze:blocking(service.reply)
        rx.recv().map_err(|_| QueryError::ServiceStopped)?
    }
}
