//! Client sessions against a [`QueryService`](crate::QueryService).
//!
//! A [`Session`] pins one scenario snapshot and accepts formula
//! **text**: each query is parsed against the snapshot's
//! interpretation ([`hpl_core::parser`]), planned
//! ([`crate::planner`]), admitted through the coalescing layer
//! ([`crate::batching`]), and evaluated on the service's worker pool.
//! The response carries the satisfaction set plus everything the bench
//! report wants to know about how the query was served.

use crate::batching::Ticket;
use crate::planner::PlanStats;
use crate::service::{Job, JobSlot, Outcome, QueryError, Snapshot};
use crossbeam::channel::unbounded;
use hpl_core::{parse, CompSet, Formula};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A client handle against one registered scenario. Cheap to create
/// (two `Arc` clones); make one per client thread.
#[derive(Debug)]
pub struct Session {
    snapshot: Arc<Snapshot>,
    jobs: JobSlot,
}

/// A served query: the satisfaction set of the folded root formula
/// over the snapshot, plus plan and serving diagnostics.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The scenario the session is bound to.
    pub scenario: String,
    /// The universe generation the result is valid for.
    pub generation: u64,
    /// The constant-folded root formula that was evaluated.
    pub formula: Formula,
    /// The satisfaction set (bit-set over the snapshot's universe).
    pub sat: Arc<CompSet>,
    /// Number of satisfying computations (`sat.count()`).
    pub count: usize,
    /// Universe size, for "k of n" reporting.
    pub universe_len: usize,
    /// `true` if this request coalesced behind an identical in-flight
    /// one instead of evaluating.
    pub coalesced: bool,
    /// What the planner did (folding / dedup / quotient selection).
    pub plan: PlanStats,
    /// End-to-end latency as observed by the client.
    pub elapsed: Duration,
}

impl Session {
    pub(crate) fn new(snapshot: Arc<Snapshot>, jobs: JobSlot) -> Self {
        Session { snapshot, jobs }
    }

    /// The scenario this session is bound to.
    #[must_use]
    pub fn scenario(&self) -> &str {
        self.snapshot.name()
    }

    /// The universe generation this session's results are keyed by.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.snapshot.generation()
    }

    /// The snapshot this session queries.
    #[must_use]
    pub fn snapshot(&self) -> &Arc<Snapshot> {
        &self.snapshot
    }

    /// Parses and serves a formula, e.g. `"K{p0} token-at-p0"`.
    ///
    /// # Errors
    ///
    /// [`QueryError::Parse`] on bad syntax or unknown atoms;
    /// otherwise as [`Session::query_formula`].
    pub fn query(&self, text: &str) -> Result<QueryResponse, QueryError> {
        let f = parse(text, &self.snapshot.interp).map_err(|e| QueryError::Parse(e.to_string()))?;
        self.query_formula(&f)
    }

    /// Serves an already-constructed formula.
    ///
    /// # Errors
    ///
    /// [`QueryError::Unsound`] when a `Reject`-policy quotient snapshot
    /// refuses an out-of-contract formula;
    /// [`QueryError::ServiceStopped`] after the service dropped.
    pub fn query_formula(&self, f: &Formula) -> Result<QueryResponse, QueryError> {
        let start = Instant::now();
        let plan = self.snapshot.plan(f);
        let generation = self.snapshot.generation;
        let (outcome, coalesced) = match self.snapshot.admission.admit(generation, plan.root()) {
            Ticket::Leader => {
                let outcome = self.submit(&plan);
                // settle on *every* path — an unsettled entry would
                // strand followers until disconnect
                self.snapshot
                    .admission
                    .settle(generation, plan.root(), &outcome);
                (outcome, false)
            }
            Ticket::Follower(rx) => match rx.recv() {
                Ok(outcome) => (outcome, true),
                // the leader vanished without settling: serve ourselves
                Err(_) => (self.submit(&plan), false),
            },
        };
        let sat = outcome?;
        Ok(QueryResponse {
            scenario: self.snapshot.name().to_owned(),
            generation,
            formula: plan.root().clone(),
            count: sat.count(),
            universe_len: self.snapshot.universe.len(),
            sat,
            coalesced,
            plan: plan.stats(),
            elapsed: start.elapsed(),
        })
    }

    /// Ships a plan to the worker pool and blocks for the outcome.
    /// The sender lives in the service's shared slot — never in the
    /// session — so a dropped service means an empty slot here (fail
    /// fast), not a channel held open past the pool's shutdown.
    fn submit(&self, plan: &crate::planner::QueryPlan) -> Outcome {
        let (tx, rx) = unbounded();
        let sent = {
            let guard = self.jobs.lock();
            match guard.as_ref() {
                Some(jobs) => jobs
                    .send(Job {
                        snapshot: Arc::clone(&self.snapshot),
                        plan: plan.clone(),
                        reply: tx,
                    })
                    .is_ok(),
                None => false,
            }
        };
        if !sent {
            return Err(QueryError::ServiceStopped);
        }
        rx.recv().map_err(|_| QueryError::ServiceStopped)?
    }
}
