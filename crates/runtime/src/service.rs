//! The persistent knowledge-query service.
//!
//! A [`QueryService`] is the long-lived server shape of the calculus:
//! it owns immutable, generation-keyed universe **snapshots** (one per
//! registered scenario) and a pool of worker threads that evaluate
//! parsed, planned epistemic queries against them concurrently. Per
//! snapshot it shares
//!
//! * a [`ClassCache`] — `[P]`-partitions, reused by every evaluator a
//!   worker spins up,
//! * a [`SatCache`] — final satisfaction sets keyed
//!   `(generation, formula)`, so repeated queries cost a lookup, and
//! * an [`Admission`] table — identical requests *in flight* coalesce
//!   behind one evaluation (see [`crate::batching`]).
//!
//! Clients talk to the service through [`Session`]s
//! ([`QueryService::session`]): formula text in, satisfaction sets and
//! plan/caching diagnostics out. Concurrent results are byte-identical
//! to a sequential [`Evaluator`] over the same snapshot — the
//! `concurrent_determinism` suite certifies this across protocols,
//! quotient policies and thread counts.

use crate::batching::Admission;
use crate::planner::{self, QueryPlan};
use crate::session::Session;
use crossbeam::channel::{unbounded, Receiver, Sender};
use hpl_core::isomorphism::ClassCache;
use hpl_core::{
    eval_propositional, CompSet, CoreError, Evaluator, Formula, GrowthMap, Interpretation, Orbits,
    QuotientPolicy, SatCache, SatCacheStats, Universe, DEFAULT_SAT_CACHE_CAPACITY,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Default [`SatCache`] resident-bytes high-water mark (64 MiB): past
/// it the service logs a one-time warning per scenario. The cache is
/// unbounded per generation by design until eviction lands (ROADMAP
/// follow-on); the warning makes the growth visible instead of silent.
pub const DEFAULT_SAT_CACHE_HIGH_WATER: usize = 64 * 1024 * 1024;

/// What a query ultimately resolves to: the satisfaction set of the
/// folded root formula, or a typed failure. `Arc`-wrapped so one
/// leader's result broadcasts to coalesced followers without copying
/// the bitset.
pub type Outcome = Result<Arc<CompSet>, QueryError>;

/// A typed query failure. `Clone`, so admission can broadcast failures
/// to followers exactly like successes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum QueryError {
    /// The formula text did not parse against the scenario's
    /// interpretation.
    Parse(String),
    /// No scenario registered under this name.
    UnknownScenario(String),
    /// The quotient snapshot rejected the query as out of the symmetry
    /// contract ([`QuotientPolicy::Reject`]).
    Unsound(String),
    /// The service's worker pool has shut down.
    ServiceStopped,
    /// A [`QueryService::reregister`] growth map did not connect the
    /// currently registered snapshot to the offered universe.
    GrowthMismatch(String),
    /// An unexpected evaluation failure.
    Internal(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(m) => write!(f, "parse error: {m}"),
            QueryError::UnknownScenario(s) => write!(f, "unknown scenario: {s}"),
            QueryError::Unsound(m) => write!(f, "query rejected: {m}"),
            QueryError::ServiceStopped => write!(f, "query service stopped"),
            QueryError::GrowthMismatch(m) => {
                write!(f, "growth map does not connect the snapshots: {m}")
            }
            QueryError::Internal(m) => write!(f, "internal evaluation error: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<CoreError> for QueryError {
    fn from(e: CoreError) -> Self {
        match e {
            CoreError::QuotientUnsound(_) => QueryError::Unsound(e.to_string()),
            other => QueryError::Internal(other.to_string()),
        }
    }
}

/// An immutable, generation-keyed view of one registered scenario:
/// the universe, its interpretation, optional quotient structure, and
/// the caches every evaluation against it shares.
#[derive(Debug)]
pub struct Snapshot {
    pub(crate) name: String,
    pub(crate) universe: Arc<Universe>,
    pub(crate) interp: Arc<Interpretation>,
    pub(crate) orbits: Option<Arc<Orbits>>,
    pub(crate) policy: QuotientPolicy,
    /// The universe generation pinned at registration — the cache key
    /// prefix for every satisfaction set computed on this snapshot.
    pub(crate) generation: u64,
    pub(crate) classes: Arc<ClassCache>,
    pub(crate) sats: Arc<SatCache>,
    pub(crate) admission: Admission<Outcome>,
    /// Shared with the owning service (one knob for all scenarios).
    high_water: Arc<AtomicUsize>,
    warned: AtomicBool,
    /// Raised when a later registration replaces this snapshot under
    /// its name. Sessions holding the snapshot keep working against it
    /// (results stay internally consistent); [`Session::is_current`]
    /// lets them notice and reopen.
    stale: AtomicBool,
}

impl Snapshot {
    /// The scenario name this snapshot was registered under.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The universe generation pinned at registration.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The snapshot's universe.
    #[must_use]
    pub fn universe(&self) -> &Arc<Universe> {
        &self.universe
    }

    /// The snapshot's interpretation.
    #[must_use]
    pub fn interpretation(&self) -> &Arc<Interpretation> {
        &self.interp
    }

    /// The quotient policy (meaningful only for quotient snapshots).
    #[must_use]
    pub fn policy(&self) -> QuotientPolicy {
        self.policy
    }

    /// Whether this snapshot is still the one registered under its
    /// name, i.e. no later [`QueryService::register`] or
    /// [`QueryService::reregister`] has replaced it.
    #[must_use]
    pub fn is_current(&self) -> bool {
        !self.stale.load(Ordering::Relaxed)
    }

    /// Hit/miss counters of the cross-query satisfaction-set cache.
    #[must_use]
    pub fn sat_cache_stats(&self) -> SatCacheStats {
        self.sats.stats()
    }

    /// Requests that joined an in-flight identical request instead of
    /// evaluating.
    #[must_use]
    pub fn coalesced(&self) -> u64 {
        self.admission.coalesced()
    }

    /// Requests that led an evaluation.
    #[must_use]
    pub fn led(&self) -> u64 {
        self.admission.led()
    }

    /// Whether this snapshot's [`SatCache`] has crossed the service's
    /// resident-bytes high-water mark (and the one-time warning fired).
    #[must_use]
    pub fn sat_cache_warned(&self) -> bool {
        self.warned.load(Ordering::Relaxed)
    }

    /// Checks the [`SatCache`] resident-bytes estimate against the
    /// high-water mark, logging a one-time warning per scenario on the
    /// way past it. Called by pool workers after each evaluation.
    fn note_sat_cache_size(&self) {
        if self.warned.load(Ordering::Relaxed) {
            return;
        }
        let stats = self.sats.stats();
        let mark = self.high_water.load(Ordering::Relaxed);
        if stats.resident_bytes > mark && !self.warned.swap(true, Ordering::Relaxed) {
            eprintln!(
                "warning: scenario '{}' sat-cache holds {} entries (~{} bytes), past the \
                 {} byte high-water mark; the cache evicts at its {} byte capacity — \
                 raise the mark or lower the capacity if this is unexpected",
                self.name, stats.entries, stats.resident_bytes, mark, stats.capacity_bytes
            );
        }
    }

    /// Plans a formula for this snapshot (see [`crate::planner`]).
    #[must_use]
    pub fn plan(&self, f: &Formula) -> QueryPlan {
        planner::plan(
            f,
            &self.interp,
            self.orbits.as_deref().map(Orbits::generators),
        )
    }

    /// Evaluates a plan on a fresh evaluator wired to this snapshot's
    /// shared caches. This is what pool workers run; it is also the
    /// sequential reference path (same code, one thread).
    pub(crate) fn evaluate(&self, plan: &QueryPlan) -> Outcome {
        let mut eval = match &self.orbits {
            Some(o) => {
                Evaluator::with_symmetry_policy(&self.universe, &self.interp, o, self.policy)
            }
            None => Evaluator::with_class_cache(&self.universe, &self.interp, self.classes.clone()),
        }
        .with_sat_cache(self.sats.clone());
        planner::execute(plan, &mut eval)
            .map(Arc::new)
            .map_err(QueryError::from)
    }
}

/// One unit of pool work: a planned query against a snapshot, with a
/// one-shot reply channel back to the session that submitted it.
#[derive(Debug)]
pub(crate) struct Job {
    pub(crate) snapshot: Arc<Snapshot>,
    pub(crate) plan: QueryPlan,
    pub(crate) reply: Sender<Outcome>,
    /// Submission instant, captured only while telemetry is enabled —
    /// the worker turns it into queue-wait time.
    pub(crate) submitted: Option<Instant>,
}

/// The single shared handle to the pool's job channel. Sessions go
/// through this slot instead of holding `Sender` clones, so emptying
/// it on shutdown is enough to disconnect the channel and stop the
/// workers even while sessions are still alive.
pub(crate) type JobSlot = Arc<Mutex<Option<Sender<Job>>>>;

/// The persistent knowledge-query service: registered snapshots plus a
/// worker pool. Dropping the service shuts the pool down; sessions
/// still holding it then get [`QueryError::ServiceStopped`].
///
/// # Example
///
/// ```
/// use hpl_core::{Interpretation, Universe};
/// use hpl_model::ScenarioPool;
/// use hpl_runtime::QueryService;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut pool = ScenarioPool::new(2);
/// let mut u = Universe::new(2);
/// u.insert(pool.compose([])?)?;
/// let mut interp = Interpretation::new();
/// interp.register("quiet", |c| c.is_empty());
///
/// let service = QueryService::start(2);
/// service.register("demo", Arc::new(u), Arc::new(interp));
/// let session = service.session("demo")?;
/// let resp = session.query("K{p0} quiet")?;
/// assert_eq!(resp.count, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct QueryService {
    snapshots: Mutex<HashMap<String, Arc<Snapshot>>>,
    jobs: JobSlot,
    workers: Vec<JoinHandle<()>>,
    sat_cache_high_water: Arc<AtomicUsize>,
    sat_cache_capacity: AtomicUsize,
}

impl QueryService {
    /// Starts a service with `workers` pool threads (at least one).
    #[must_use]
    pub fn start(workers: usize) -> Self {
        let (tx, rx) = unbounded::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("hpl-query-{i}"))
                    .spawn(move || worker_loop(i, &rx))
                    .expect("spawn query worker")
            })
            .collect();
        QueryService {
            snapshots: Mutex::new(HashMap::new()),
            jobs: Arc::new(Mutex::new(Some(tx))),
            workers,
            sat_cache_high_water: Arc::new(AtomicUsize::new(DEFAULT_SAT_CACHE_HIGH_WATER)),
            sat_cache_capacity: AtomicUsize::new(DEFAULT_SAT_CACHE_CAPACITY),
        }
    }

    /// Sets the [`SatCache`] resident-bytes high-water mark shared by
    /// every registered scenario (default
    /// [`DEFAULT_SAT_CACHE_HIGH_WATER`]). Crossing it triggers a
    /// one-time warning per scenario; it does **not** evict — the
    /// per-cache capacity ([`QueryService::set_sat_cache_capacity`])
    /// does that.
    pub fn set_sat_cache_high_water(&self, bytes: usize) {
        self.sat_cache_high_water.store(bytes, Ordering::Relaxed);
    }

    /// Sets the [`SatCache`] resident-bytes capacity used by
    /// scenarios registered **from now on** (default
    /// [`DEFAULT_SAT_CACHE_CAPACITY`]). Already-registered snapshots
    /// keep the capacity they were created with — re-register to apply
    /// a new one.
    pub fn set_sat_cache_capacity(&self, bytes: usize) {
        self.sat_cache_capacity.store(bytes, Ordering::Relaxed);
    }

    /// Registers (or replaces) a plain scenario snapshot. Returns the
    /// pinned universe generation — the cache key for every
    /// satisfaction set computed on it.
    pub fn register(
        &self,
        name: &str,
        universe: Arc<Universe>,
        interp: Arc<Interpretation>,
    ) -> u64 {
        self.install(
            name,
            universe,
            interp,
            None,
            QuotientPolicy::default(),
            ClassCache::shared(),
            SatCache::shared_with_capacity(self.sat_cache_capacity.load(Ordering::Relaxed)),
        )
    }

    /// Registers (or replaces) a **symmetry-quotient** scenario
    /// snapshot: knowledge queries quantify over whole orbits, and the
    /// planner selects quotient-vs-full per subtree with the soundness
    /// classifier under the given policy.
    pub fn register_quotient(
        &self,
        name: &str,
        universe: Arc<Universe>,
        interp: Arc<Interpretation>,
        orbits: Arc<Orbits>,
        policy: QuotientPolicy,
    ) -> u64 {
        self.install(
            name,
            universe,
            interp,
            Some(orbits),
            policy,
            ClassCache::shared(),
            SatCache::shared_with_capacity(self.sat_cache_capacity.load(Ordering::Relaxed)),
        )
    }

    /// Replaces a registered plain scenario with a **grown** universe,
    /// hot-swapping the snapshot while carrying its caches forward:
    ///
    /// * the [`ClassCache`] learns the growth edge
    ///   ([`ClassCache::note_growth`]), so `[P]`-partitions of the new
    ///   generation are rebuilt incrementally from the cached ones
    ///   instead of from scratch;
    /// * **propositional** [`SatCache`] entries are carried — surviving
    ///   members keep their verdicts through the growth map and only
    ///   newly enumerated computations are decided
    ///   ([`SatCache::carry_forward`]); epistemic entries are dropped
    ///   (growth can change them anywhere).
    ///
    /// Sessions opened before the swap keep answering against the old
    /// snapshot (internally consistent); they can notice via
    /// [`Session::is_current`](crate::Session::is_current) and reopen.
    ///
    /// Returns the new pinned generation.
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownScenario`] if `name` is not registered;
    /// [`QueryError::GrowthMismatch`] if `growth` does not connect the
    /// registered snapshot's generation to `universe`'s, does not cover
    /// the registered universe, or the scenario kind (plain vs
    /// quotient) changes.
    pub fn reregister(
        &self,
        name: &str,
        universe: Arc<Universe>,
        interp: Arc<Interpretation>,
        growth: &GrowthMap,
    ) -> Result<u64, QueryError> {
        self.reinstall(
            name,
            universe,
            interp,
            None,
            QuotientPolicy::default(),
            growth,
        )
    }

    /// [`QueryService::reregister`] for quotient scenarios: the grown
    /// representative universe plus its orbit structure. Cache
    /// carry-over and staleness semantics are identical.
    ///
    /// # Errors
    ///
    /// As [`QueryService::reregister`].
    pub fn reregister_quotient(
        &self,
        name: &str,
        universe: Arc<Universe>,
        interp: Arc<Interpretation>,
        orbits: Arc<Orbits>,
        policy: QuotientPolicy,
        growth: &GrowthMap,
    ) -> Result<u64, QueryError> {
        self.reinstall(name, universe, interp, Some(orbits), policy, growth)
    }

    #[allow(clippy::needless_pass_by_value)]
    fn reinstall(
        &self,
        name: &str,
        universe: Arc<Universe>,
        interp: Arc<Interpretation>,
        orbits: Option<Arc<Orbits>>,
        policy: QuotientPolicy,
        growth: &GrowthMap,
    ) -> Result<u64, QueryError> {
        let old = self
            .snapshot(name)
            .ok_or_else(|| QueryError::UnknownScenario(name.to_owned()))?;
        if growth.from_generation() != old.generation {
            return Err(QueryError::GrowthMismatch(format!(
                "growth starts at generation {} but '{name}' is registered at {}",
                growth.from_generation(),
                old.generation
            )));
        }
        let generation = universe.generation();
        if growth.to_generation() != generation {
            return Err(QueryError::GrowthMismatch(format!(
                "growth ends at generation {} but the offered universe is at {generation}",
                growth.to_generation()
            )));
        }
        if growth.len() != old.universe.len() {
            return Err(QueryError::GrowthMismatch(format!(
                "growth maps {} computations but '{name}' holds {}",
                growth.len(),
                old.universe.len()
            )));
        }
        if old.orbits.is_some() != orbits.is_some() {
            return Err(QueryError::GrowthMismatch(format!(
                "'{name}' cannot change kind ({} registered, {} offered)",
                if old.orbits.is_some() {
                    "quotient"
                } else {
                    "plain"
                },
                if orbits.is_some() {
                    "quotient"
                } else {
                    "plain"
                },
            )));
        }

        // carry the partition cache: record the edge so the next
        // classes() call on the new generation grows incrementally
        let classes = Arc::clone(&old.classes);
        classes.note_growth(growth);

        // carry propositional satisfaction sets: remap survivors, decide
        // only the newly enumerated computations
        let sats = Arc::clone(&old.sats);
        let mut image = vec![false; universe.len()];
        for (_, new) in growth.iter() {
            image[new.index()] = true;
        }
        let carried = sats.carry_forward(old.generation, generation, |f, old_sat| {
            if !f.is_propositional() {
                return None;
            }
            let mut sat = CompSet::new(universe.len());
            for (o, n) in growth.iter() {
                if old_sat.contains(o.index()) {
                    sat.insert(n.index());
                }
            }
            for (id, c) in universe.iter() {
                if !image[id.index()] && eval_propositional(f, &interp, c)? {
                    sat.insert(id.index());
                }
            }
            Some(sat)
        });
        hpl_telemetry::counter_add("service.sat_carried", carried as u64);

        Ok(self.install(name, universe, interp, orbits, policy, classes, sats))
    }

    #[allow(clippy::too_many_arguments)]
    fn install(
        &self,
        name: &str,
        universe: Arc<Universe>,
        interp: Arc<Interpretation>,
        orbits: Option<Arc<Orbits>>,
        policy: QuotientPolicy,
        classes: Arc<ClassCache>,
        sats: Arc<SatCache>,
    ) -> u64 {
        let generation = universe.generation();
        let snapshot = Arc::new(Snapshot {
            name: name.to_owned(),
            universe,
            interp,
            orbits,
            policy,
            generation,
            classes,
            sats,
            admission: Admission::new(),
            high_water: Arc::clone(&self.sat_cache_high_water),
            warned: AtomicBool::new(false),
            stale: AtomicBool::new(false),
        });
        if let Some(replaced) = self.snapshots.lock().insert(name.to_owned(), snapshot) {
            replaced.stale.store(true, Ordering::Relaxed);
        }
        generation
    }

    /// Opens a session against a registered scenario. Sessions are
    /// independent: create one per client thread.
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownScenario`] if nothing is registered under
    /// `scenario`, [`QueryError::ServiceStopped`] after shutdown.
    pub fn session(&self, scenario: &str) -> Result<Session, QueryError> {
        let snapshot = self
            .snapshots
            .lock()
            .get(scenario)
            .cloned()
            .ok_or_else(|| QueryError::UnknownScenario(scenario.to_owned()))?;
        // analyze:acquire(service.job_slot) analyze:release(service.job_slot)
        if self.jobs.lock().is_none() {
            return Err(QueryError::ServiceStopped);
        }
        Ok(Session::new(snapshot, Arc::clone(&self.jobs)))
    }

    /// The snapshot registered under `scenario`, if any (diagnostics
    /// and bench reporting).
    #[must_use]
    pub fn snapshot(&self, scenario: &str) -> Option<Arc<Snapshot>> {
        self.snapshots.lock().get(scenario).cloned()
    }

    /// Names of all registered scenarios, sorted.
    #[must_use]
    pub fn scenarios(&self) -> Vec<String> {
        let mut names: Vec<String> = self.snapshots.lock().keys().cloned().collect();
        names.sort();
        names
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        // the slot holds the channel's only sender: emptying it
        // disconnects the channel, so workers drain the already-queued
        // jobs and exit — even while sessions are still alive (they
        // find the slot empty and fail fast with `ServiceStopped`)
        // analyze:acquire(service.job_slot) analyze:release(service.job_slot)
        drop(self.jobs.lock().take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Pool worker: pull a job, evaluate it against its snapshot, reply.
/// The shared receiver sits behind a mutex (the vendored channel is
/// single-consumer); evaluation itself runs outside the lock.
fn worker_loop(index: usize, rx: &Mutex<Receiver<Job>>) {
    // per-worker busy-time counter (utilization = busy / wall), plus
    // the pool-wide totals; resolved once per worker
    let busy = hpl_telemetry::global().counter(&format!("service.worker_{index}_busy_ns"));
    let busy_total = hpl_telemetry::counter("service.worker_busy_ns");
    let jobs_total = hpl_telemetry::counter("service.jobs");
    loop {
        let job = {
            // analyze:acquire(service.job_rx)
            let guard = rx.lock();
            // analyze:blocking(service.jobs) analyze:allow(lock-across-blocking) the job-rx mutex IS the consume token for the single-consumer receiver; no other lock is ever taken under it and every worker blocks here identically
            guard.recv()
            // analyze:release(service.job_rx)
        };
        let Ok(job) = job else {
            return; // channel closed: the service dropped its sender
        };
        if let Some(submitted) = job.submitted {
            #[allow(clippy::cast_possible_truncation)]
            hpl_telemetry::record("service.queue_wait", submitted.elapsed().as_nanos() as u64);
        }
        // analyze:allow(wall-clock) evaluate-latency telemetry, gated on the recorder
        let started = hpl_telemetry::enabled().then(Instant::now);
        let outcome = {
            let _evaluate = hpl_telemetry::span("service.evaluate");
            job.snapshot.evaluate(&job.plan)
        };
        if let Some(t) = started {
            #[allow(clippy::cast_possible_truncation)]
            let ns = t.elapsed().as_nanos() as u64;
            busy.add(ns);
            busy_total.add(ns);
            jobs_total.add(1);
        }
        job.snapshot.note_sat_cache_size();
        // a session that gave up waiting is fine
        let _ = job.reply.send(outcome);
    }
}
