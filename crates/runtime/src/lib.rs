//! # hpl-runtime — real threads, recorded as computations
//!
//! Two runtime shapes live here:
//!
//! 1. A small message-passing runtime over OS threads and crossbeam
//!    channels whose every execution is captured as a validated
//!    [`hpl_model::Computation`]. It demonstrates that the calculus of
//!    *How Processes Learn* applies to genuine concurrent
//!    interleavings, not only simulated ones: traces recorded here feed
//!    directly into `hpl-core`'s causality and chain analyses (see the
//!    `live_run` example).
//! 2. The **persistent knowledge-query service** ([`QueryService`]):
//!    generation-keyed immutable universe snapshots, a formula-text
//!    session API ([`Session`]), a query planner with constant folding,
//!    common-subformula dedup and per-subtree quotient selection
//!    ([`planner`]), in-flight request coalescing ([`batching`]), and a
//!    worker pool evaluating concurrently through shared class/sat-set
//!    caches ([`service`]).
//!
//! ## Recording discipline
//!
//! A global [`parking_lot::Mutex`]-guarded log assigns each event its
//! position: a thread records its *send* under the lock **before**
//! pushing the envelope into the channel, and records a *receive* after
//! popping — so every receive appears after its corresponding send and
//! the log is always a valid system computation (the defining condition
//! of paper §2).
//!
//! # Example
//!
//! ```
//! use hpl_runtime::{Behavior, Runtime, ThreadCtx};
//! use hpl_model::ProcessId;
//!
//! struct Ping;
//! impl Behavior for Ping {
//!     fn run(&mut self, ctx: &mut ThreadCtx) {
//!         if ctx.me().index() == 0 {
//!             ctx.send(ProcessId::new(1), 7);
//!             let (_, reply) = ctx.recv().expect("pong");
//!             assert_eq!(reply, 8);
//!         } else {
//!             let (from, _) = ctx.recv().expect("ping");
//!             ctx.send(from, 8);
//!         }
//!     }
//! }
//!
//! let trace = Runtime::new(2).run(|_| Box::new(Ping));
//! assert_eq!(trace.sends(), 2);
//! assert_eq!(trace.receives(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batching;
pub mod planner;
pub mod service;
pub mod session;

pub use batching::{Admission, Ticket};
pub use planner::{execute, fold, plan, PlanStats, PlanStep, QueryPlan, SubtreeMode};
pub use service::{QueryError, QueryService, Snapshot};
pub use session::{QueryResponse, Session};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use hpl_model::{ActionId, Computation, Event, EventId, EventKind, MessageId, ProcessId};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// An envelope carried between threads.
#[derive(Debug)]
struct Envelope {
    from: ProcessId,
    message: MessageId,
    payload: u64,
}

/// The shared, ordered event log.
#[derive(Debug, Default)]
struct Recorder {
    events: Mutex<RecorderInner>,
}

#[derive(Debug, Default)]
struct RecorderInner {
    log: Vec<Event>,
    next_event: usize,
    next_message: usize,
}

impl Recorder {
    /// Records a send and allocates the message id, atomically w.r.t.
    /// the global order.
    fn record_send(&self, from: ProcessId, to: ProcessId) -> MessageId {
        let mut inner = self.events.lock();
        let message = MessageId::new(inner.next_message);
        inner.next_message += 1;
        let id = EventId::new(inner.next_event);
        inner.next_event += 1;
        inner
            .log
            .push(Event::new(id, from, EventKind::Send { to, message }));
        message
    }

    fn record_receive(&self, at: ProcessId, from: ProcessId, message: MessageId) {
        let mut inner = self.events.lock();
        let id = EventId::new(inner.next_event);
        inner.next_event += 1;
        inner
            .log
            .push(Event::new(id, at, EventKind::Receive { from, message }));
    }

    fn record_internal(&self, at: ProcessId, action: ActionId) {
        let mut inner = self.events.lock();
        let id = EventId::new(inner.next_event);
        inner.next_event += 1;
        inner
            .log
            .push(Event::new(id, at, EventKind::Internal { action }));
    }
}

/// The per-thread handle a [`Behavior`] uses to communicate.
#[derive(Debug)]
pub struct ThreadCtx {
    me: ProcessId,
    senders: Vec<Sender<Envelope>>,
    receiver: Receiver<Envelope>,
    recorder: Arc<Recorder>,
}

impl ThreadCtx {
    /// This thread's process id.
    #[must_use]
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Number of processes in the runtime.
    #[must_use]
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// Returns `true` if this is a single-process runtime.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Sends `payload` to `to`; the send event is recorded before the
    /// envelope becomes visible to the receiver.
    pub fn send(&self, to: ProcessId, payload: u64) {
        let message = self.recorder.record_send(self.me, to);
        // a closed peer (already finished) just drops the message — it
        // stays "in flight" in the recorded computation, which is valid
        let _ = self.senders[to.index()].send(Envelope {
            from: self.me,
            message,
            payload,
        });
    }

    /// Blocking receive. Returns `None` if all peers have finished and
    /// the channel drained.
    pub fn recv(&self) -> Option<(ProcessId, u64)> {
        let envelope = self.receiver.recv().ok()?;
        self.recorder
            .record_receive(self.me, envelope.from, envelope.message);
        Some((envelope.from, envelope.payload))
    }

    /// Receive with a timeout; `None` on timeout or disconnection.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(ProcessId, u64)> {
        match self.receiver.recv_timeout(timeout) {
            Ok(envelope) => {
                self.recorder
                    .record_receive(self.me, envelope.from, envelope.message);
                Some((envelope.from, envelope.payload))
            }
            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Records an internal event (a local state change worth analysing).
    pub fn internal(&self, action: ActionId) {
        self.recorder.record_internal(self.me, action);
    }
}

/// The behaviour of one process, run on its own OS thread.
pub trait Behavior: Send {
    /// Runs the process to completion.
    fn run(&mut self, ctx: &mut ThreadCtx);
}

/// A runtime of `n` processes communicating over unbounded channels.
#[derive(Debug)]
pub struct Runtime {
    n: usize,
}

impl Runtime {
    /// Creates a runtime of `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Runtime { n }
    }

    /// Spawns one thread per process, runs every behaviour to
    /// completion, and returns the recorded computation.
    ///
    /// # Panics
    ///
    /// Propagates panics from behaviour threads.
    pub fn run<F>(&self, mut make: F) -> Computation
    where
        F: FnMut(ProcessId) -> Box<dyn Behavior>,
    {
        let recorder = Arc::new(Recorder::default());
        let mut senders = Vec::with_capacity(self.n);
        let mut receivers = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }

        let mut handles = Vec::with_capacity(self.n);
        for (i, receiver) in receivers.into_iter().enumerate() {
            let me = ProcessId::new(i);
            let mut ctx = ThreadCtx {
                me,
                senders: senders.clone(),
                receiver,
                recorder: Arc::clone(&recorder),
            };
            let mut behavior = make(me);
            handles.push(std::thread::spawn(move || {
                behavior.run(&mut ctx);
            }));
        }
        drop(senders);
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }

        let inner = recorder.events.lock();
        Computation::from_events(self.n, inner.log.clone())
            .expect("recording discipline maintains validity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpl_model::{CausalClosure, ProcessSet};

    /// Relay: 0 → 1 → … → n−1, each forwarding an incremented value.
    struct Relay {
        n: usize,
    }

    impl Behavior for Relay {
        fn run(&mut self, ctx: &mut ThreadCtx) {
            let me = ctx.me().index();
            if me == 0 {
                ctx.send(ProcessId::new(1), 1);
            } else {
                let (_, v) = ctx.recv().expect("relay value");
                if me + 1 < self.n {
                    ctx.send(ProcessId::new(me + 1), v + 1);
                }
            }
        }
    }

    #[test]
    fn relay_records_full_chain() {
        let n = 5;
        let trace = Runtime::new(n).run(|_| Box::new(Relay { n }));
        assert_eq!(trace.sends(), n - 1);
        assert_eq!(trace.receives(), n - 1);
        // the recorded trace carries the process chain <p0 p1 … p4>
        let sets: Vec<ProcessSet> = (0..n).map(|i| ProcessSet::from_indices([i])).collect();
        assert!(
            hpl_model::has_chain(&trace, 0, &sets),
            "live trace must contain the relay chain"
        );
        // and not the reverse
        let rev: Vec<ProcessSet> = sets.iter().rev().copied().collect();
        assert!(!hpl_model::has_chain(&trace, 0, &rev));
    }

    /// All-to-one: everyone reports to 0, which counts.
    struct Gather {
        n: usize,
        got: usize,
    }

    impl Behavior for Gather {
        fn run(&mut self, ctx: &mut ThreadCtx) {
            if ctx.me().index() == 0 {
                while self.got + 1 < self.n {
                    if ctx.recv().is_some() {
                        self.got += 1;
                    } else {
                        break;
                    }
                }
                ctx.internal(ActionId::new(42)); // "all reports in"
            } else {
                ctx.send(ProcessId::new(0), ctx.me().index() as u64);
            }
        }
    }

    #[test]
    fn gather_causality_in_live_trace() {
        let n = 4;
        let trace = Runtime::new(n).run(|_| Box::new(Gather { n, got: 0 }));
        assert_eq!(trace.receives(), n - 1);
        // the "all reports in" event is causally after every send
        let hb = CausalClosure::new(&trace);
        let mark = trace
            .iter()
            .position(|e| e.is_internal())
            .expect("internal marker");
        for (i, e) in trace.iter().enumerate() {
            if e.is_send() {
                assert!(
                    hb.happened_before(i, mark),
                    "report {i} must precede the marker"
                );
            }
        }
    }

    #[test]
    fn concurrent_sends_yield_valid_traces_every_time() {
        // hammer the recorder: many threads sending concurrently; the
        // trace must validate (the constructor checks) on every run
        for run in 0..20 {
            let n = 6;
            let trace = Runtime::new(n).run(|_| Box::new(Gather { n, got: 0 }));
            assert_eq!(trace.system_size(), n, "run {run}");
            assert_eq!(trace.sends(), n - 1);
        }
    }

    #[test]
    fn recv_timeout_expires() {
        struct Waiter;
        impl Behavior for Waiter {
            fn run(&mut self, ctx: &mut ThreadCtx) {
                // nobody ever sends to 0
                let got = ctx.recv_timeout(Duration::from_millis(10));
                assert!(got.is_none());
            }
        }
        let trace = Runtime::new(1).run(|_| Box::new(Waiter));
        assert!(trace.is_empty());
    }

    #[test]
    fn messages_to_finished_peers_stay_in_flight() {
        struct FireAndForget;
        impl Behavior for FireAndForget {
            fn run(&mut self, ctx: &mut ThreadCtx) {
                if ctx.me().index() == 0 {
                    // peer 1 exits immediately; the message is never read
                    std::thread::sleep(Duration::from_millis(20));
                    ctx.send(ProcessId::new(1), 9);
                }
            }
        }
        let trace = Runtime::new(2).run(|_| Box::new(FireAndForget));
        assert_eq!(trace.sends(), 1);
        assert_eq!(trace.receives(), 0);
        assert_eq!(trace.in_flight().len(), 1);
    }
}
