//! Identifier newtypes.
//!
//! The paper assumes "all events and all messages are distinguished; for
//! instance, multiple occurrences of the same message are distinguished by
//! affixing sequence numbers to them". We realize that convention with
//! dense integer identifiers: [`EventId`] identifies an event *across*
//! computations of the same system (two computations contain "the same
//! event" iff the ids are equal), and [`MessageId`] identifies a message,
//! which by construction equals the id of its send event's message slot.

use std::fmt;

/// Identifier of a process in a distributed system.
///
/// Processes are numbered densely from `0` to `n - 1`. The limit of a
/// single system is [`ProcessSet::CAPACITY`](crate::ProcessSet::CAPACITY)
/// processes.
///
/// # Example
///
/// ```
/// use hpl_model::ProcessId;
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ProcessId(u16);

impl ProcessId {
    /// Creates a process id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in the supported process range
    /// (`0..=u16::MAX`).
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(
            index <= usize::from(u16::MAX),
            "process index {index} out of range"
        );
        ProcessId(index as u16)
    }

    /// Returns the dense index of this process.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u16> for ProcessId {
    fn from(v: u16) -> Self {
        ProcessId(v)
    }
}

/// Identifier of an event.
///
/// Event ids are unique within an event space: the same id appearing in two
/// different [`Computation`](crate::Computation)s denotes *the same event*
/// (the paper's convention that all events are distinguished). Equality of
/// projections — the basis of isomorphism — therefore reduces to equality
/// of id sequences.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct EventId(u32);

impl EventId {
    /// Creates an event id from a raw index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(
            index <= u32::MAX as usize,
            "event index {index} out of range"
        );
        EventId(index as u32)
    }

    /// Returns the raw index of this event id.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Identifier of a message.
///
/// Messages are distinguished (paper §2); a message id is unique per send
/// event. Builders assign message ids densely.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct MessageId(u32);

impl MessageId {
    /// Creates a message id from a raw index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(
            index <= u32::MAX as usize,
            "message index {index} out of range"
        );
        MessageId(index as u32)
    }

    /// Returns the raw index of this message id.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Identifier of an internal action, used to distinguish internal events
/// that are otherwise indistinguishable (e.g. "toggle bit" vs "crash").
///
/// Protocol layers map their action vocabulary onto `ActionId`s; the model
/// layer treats them as opaque.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ActionId(u32);

impl ActionId {
    /// Creates an action id from a raw tag.
    #[must_use]
    pub const fn new(tag: u32) -> Self {
        ActionId(tag)
    }

    /// Returns the raw tag of this action.
    #[must_use]
    pub const fn tag(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip() {
        for i in [0usize, 1, 5, 127] {
            assert_eq!(ProcessId::new(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn process_id_out_of_range() {
        let _ = ProcessId::new(usize::from(u16::MAX) + 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ProcessId::new(2).to_string(), "p2");
        assert_eq!(EventId::new(7).to_string(), "e7");
        assert_eq!(MessageId::new(9).to_string(), "m9");
        assert_eq!(ActionId::new(1).to_string(), "a1");
    }

    #[test]
    fn ordering_is_by_index() {
        assert!(EventId::new(1) < EventId::new(2));
        assert!(ProcessId::new(0) < ProcessId::new(1));
        assert!(MessageId::new(3) < MessageId::new(30));
    }

    #[test]
    fn ids_are_hashable_and_copy() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        let e = EventId::new(4);
        s.insert(e);
        s.insert(e); // Copy
        assert_eq!(s.len(), 1);
    }
}
