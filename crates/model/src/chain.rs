//! Process chains: `⟨P₁ P₂ … Pₙ⟩ in (x, z)` (paper §3.1).
//!
//! A computation `z` *has a process chain* `⟨P₁ … Pₙ⟩` iff there exist
//! events `e₁, …, eₙ` — **not necessarily distinct** — with `eᵢ` on `Pᵢ`
//! and `e₁ → e₂ → … → eₙ`. A chain *in the suffix* `(x, z)` restricts the
//! events to those after the prefix `x`; because causal successors of
//! suffix events are themselves in the suffix, the happened-before relation
//! restricted to the suffix is self-contained.
//!
//! Detection is a layered dynamic program over the causal closure:
//! `layerₖ = { positions on Pₖ whose causal past meets layerₖ₋₁ }`, which
//! runs in `O(n · m² / 64)` for a chain of `n` sets over `m` suffix events.
//!
//! The paper's Observation 1 — any `P` in a chain may be replaced by `P P`
//! since `e → e` — is covered by the reflexivity of the closure and tested
//! below.

use crate::causality::CausalClosure;
use crate::computation::Computation;
use crate::event::Event;
use crate::id::EventId;
use crate::procset::ProcessSet;

/// A witness for a process chain: one event per chain position, with
/// `events[i] → events[i+1]` (events may repeat).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainWitness {
    events: Vec<Event>,
}

impl ChainWitness {
    /// Wraps explicit events as a witness (one per chain position).
    ///
    /// The events are not checked here; use [`ChainWitness::verify`] to
    /// validate a wrapped witness against a computation.
    #[must_use]
    pub fn from_events(events: Vec<Event>) -> Self {
        ChainWitness { events }
    }

    /// The witnessing events, one per chain position.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The witnessing event ids.
    #[must_use]
    pub fn event_ids(&self) -> Vec<EventId> {
        self.events.iter().map(|e| e.id()).collect()
    }

    /// Chain length `n` (number of process sets matched).
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the witness is empty (only for the degenerate zero-length
    /// chain, which trivially exists).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks the witness against a computation: each event is on its set
    /// and consecutive events are causally ordered.
    #[must_use]
    pub fn verify(&self, z: &Computation, prefix_len: usize, sets: &[ProcessSet]) -> bool {
        if self.events.len() != sets.len() {
            return false;
        }
        let hb = CausalClosure::new(z);
        let mut positions = Vec::with_capacity(self.events.len());
        for e in &self.events {
            match z.position_of(e.id()) {
                Some(pos) if pos >= prefix_len => positions.push(pos),
                _ => return false,
            }
        }
        for (e, set) in self.events.iter().zip(sets) {
            if !e.is_on_set(*set) {
                return false;
            }
        }
        positions.windows(2).all(|w| hb.happened_before(w[0], w[1]))
    }
}

/// Returns `true` iff `(x, z)` — where `x = z.prefix(prefix_len)` —
/// contains a process chain `⟨sets[0] … sets[n-1]⟩`.
///
/// An empty `sets` slice denotes the degenerate chain, which always exists.
///
/// # Panics
///
/// Panics if `prefix_len > z.len()`.
#[must_use]
pub fn has_chain(z: &Computation, prefix_len: usize, sets: &[ProcessSet]) -> bool {
    find_chain(z, prefix_len, sets).is_some()
}

/// Finds a witness for the process chain `⟨sets[0] … sets[n-1]⟩ in (x, z)`,
/// or returns `None` if no chain exists.
///
/// # Panics
///
/// Panics if `prefix_len > z.len()`.
#[must_use]
pub fn find_chain(z: &Computation, prefix_len: usize, sets: &[ProcessSet]) -> Option<ChainWitness> {
    assert!(prefix_len <= z.len(), "prefix length out of range");
    if sets.is_empty() {
        return Some(ChainWitness { events: Vec::new() });
    }
    let m = z.len();
    let hb = CausalClosure::new(z);
    let words = m.div_ceil(64).max(1);

    // layer bitsets over *positions* of z; only positions >= prefix_len
    // may participate.
    let mut layer = vec![0u64; words];
    // pred[k][j] = predecessor position chosen for position j at layer k
    let mut preds: Vec<Vec<Option<usize>>> = Vec::with_capacity(sets.len());

    for (k, set) in sets.iter().enumerate() {
        let mut next = vec![0u64; words];
        let mut pred_k = vec![None; m];
        for j in prefix_len..m {
            if !z.events()[j].is_on_set(*set) {
                continue;
            }
            if k == 0 {
                next[j / 64] |= 1u64 << (j % 64);
                continue;
            }
            // does j's causal past (reflexive) meet the previous layer?
            let row = hb.row(j);
            let mut hit = None;
            for w in 0..words {
                let meet = row[w] & layer[w];
                if meet != 0 {
                    hit = Some(w * 64 + meet.trailing_zeros() as usize);
                    break;
                }
            }
            if let Some(i) = hit {
                next[j / 64] |= 1u64 << (j % 64);
                pred_k[j] = Some(i);
            }
        }
        preds.push(pred_k);
        layer = next;
        if layer.iter().all(|&w| w == 0) {
            return None;
        }
    }

    // reconstruct: pick any member of the final layer, walk predecessors
    let mut j = (0..m).find(|&j| layer[j / 64] & (1u64 << (j % 64)) != 0)?;
    let mut chain_rev = vec![j];
    for k in (1..sets.len()).rev() {
        j = preds[k][j].expect("layer membership implies recorded predecessor");
        chain_rev.push(j);
    }
    chain_rev.reverse();
    Some(ChainWitness {
        events: chain_rev.iter().map(|&p| z.events()[p]).collect(),
    })
}

/// Convenience wrapper taking the prefix as a computation.
///
/// # Errors
///
/// Returns [`crate::ModelError::NotAPrefix`] if `x` is not a prefix of `z`.
pub fn find_chain_between(
    x: &Computation,
    z: &Computation,
    sets: &[ProcessSet],
) -> Result<Option<ChainWitness>, crate::ModelError> {
    if !x.is_prefix_of(z) {
        return Err(crate::ModelError::NotAPrefix);
    }
    Ok(find_chain(z, x.len(), sets))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ComputationBuilder;
    use crate::id::ProcessId;
    use proptest::prelude::*;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn ps(i: usize) -> ProcessSet {
        ProcessSet::singleton(pid(i))
    }

    /// p0 → p1 → p2 relay.
    fn relay() -> Computation {
        let mut b = ComputationBuilder::new(3);
        let m1 = b.send(pid(0), pid(1)).unwrap();
        b.receive(pid(1), m1).unwrap();
        let m2 = b.send(pid(1), pid(2)).unwrap();
        b.receive(pid(2), m2).unwrap();
        b.finish()
    }

    #[test]
    fn degenerate_chain_exists() {
        let z = relay();
        assert!(has_chain(&z, 0, &[]));
        assert!(has_chain(&z, z.len(), &[]));
    }

    #[test]
    fn single_set_chain_is_event_presence() {
        let z = relay();
        assert!(has_chain(&z, 0, &[ps(0)]));
        assert!(has_chain(&z, 0, &[ps(2)]));
        // after the full computation, no events remain
        assert!(!has_chain(&z, z.len(), &[ps(0)]));
        // p0 has no event after position 1
        assert!(!has_chain(&z, 1, &[ps(0)]));
        assert!(has_chain(&z, 1, &[ps(2)]));
    }

    #[test]
    fn relay_has_full_chain() {
        let z = relay();
        let w = find_chain(&z, 0, &[ps(0), ps(1), ps(2)]).expect("chain must exist");
        assert!(w.verify(&z, 0, &[ps(0), ps(1), ps(2)]));
        assert_eq!(w.len(), 3);
        // but no chain in the reverse direction
        assert!(!has_chain(&z, 0, &[ps(2), ps(1), ps(0)]));
    }

    #[test]
    fn chain_respects_prefix_boundary() {
        let z = relay();
        // after the first send is in the prefix, p0 can no longer start a
        // chain: <p0 p2> needs a p0 event in the suffix.
        assert!(has_chain(&z, 0, &[ps(0), ps(2)]));
        assert!(!has_chain(&z, 1, &[ps(0), ps(2)]));
        // but p1's receive is in the suffix and reaches p2:
        assert!(has_chain(&z, 1, &[ps(1), ps(2)]));
    }

    #[test]
    fn observation_1_stuttering() {
        // <P> exists iff <P P> exists iff <P P P> exists (e → e).
        let z = relay();
        for base in [ps(0), ps(1), ps(2)] {
            let once = has_chain(&z, 0, &[base]);
            let twice = has_chain(&z, 0, &[base, base]);
            let thrice = has_chain(&z, 0, &[base, base, base]);
            assert_eq!(once, twice);
            assert_eq!(twice, thrice);
        }
        // also inside longer chains: <p0 p1> iff <p0 p0 p1 p1>
        assert_eq!(
            has_chain(&z, 0, &[ps(0), ps(1)]),
            has_chain(&z, 0, &[ps(0), ps(0), ps(1), ps(1)])
        );
    }

    #[test]
    fn concurrent_events_give_no_chain() {
        let mut b = ComputationBuilder::new(2);
        b.internal(pid(0)).unwrap();
        b.internal(pid(1)).unwrap();
        let z = b.finish();
        assert!(!has_chain(&z, 0, &[ps(0), ps(1)]));
        assert!(!has_chain(&z, 0, &[ps(1), ps(0)]));
        assert!(has_chain(&z, 0, &[ps(0)]));
        assert!(has_chain(&z, 0, &[ps(1)]));
    }

    #[test]
    fn set_valued_links() {
        let z = relay();
        let p01 = ProcessSet::from_indices([0, 1]);
        // <{p0,p1} {p2}> holds via p1's send → p2's receive
        let w = find_chain(&z, 0, &[p01, ps(2)]).unwrap();
        assert!(w.verify(&z, 0, &[p01, ps(2)]));
        // a set containing no event yields no chain
        assert!(!has_chain(&z, 0, &[ProcessSet::EMPTY, ps(2)]));
    }

    #[test]
    fn witness_single_event_for_repeated_sets() {
        // a single receive event on p1 can serve consecutive chain slots
        let mut b = ComputationBuilder::new(2);
        let m = b.send(pid(0), pid(1)).unwrap();
        b.receive(pid(1), m).unwrap();
        let z = b.finish();
        let w = find_chain(&z, 0, &[ps(0), ps(1), ps(1)]).unwrap();
        assert!(w.verify(&z, 0, &[ps(0), ps(1), ps(1)]));
    }

    #[test]
    fn find_chain_between_requires_prefix() {
        let z = relay();
        let x = z.prefix(2);
        assert!(find_chain_between(&x, &z, &[ps(1), ps(2)])
            .unwrap()
            .is_some());
        // Disjoint id range so the computation shares no events with z.
        let mut b = ComputationBuilder::with_id_offsets(3, 500, 500);
        b.internal(pid(0)).unwrap();
        let not_prefix = b.finish();
        assert!(find_chain_between(&not_prefix, &z, &[ps(0)]).is_err());
    }

    #[test]
    fn witness_verify_rejects_wrong_claims() {
        let z = relay();
        let w = find_chain(&z, 0, &[ps(0), ps(1)]).unwrap();
        // wrong sets
        assert!(!w.verify(&z, 0, &[ps(1), ps(0)]));
        // wrong arity
        assert!(!w.verify(&z, 0, &[ps(0)]));
        // wrong prefix: witness events must live in the suffix
        assert!(!w.verify(&z, z.len(), &[ps(0), ps(1)]));
    }

    fn random_computation(n: usize, steps: usize, seed: u64) -> Computation {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = ComputationBuilder::new(n);
        let mut in_flight: Vec<(ProcessId, crate::id::MessageId)> = Vec::new();
        for _ in 0..steps {
            match rng.random_range(0..3) {
                0 => {
                    let from = pid(rng.random_range(0..n));
                    let to = pid(rng.random_range(0..n));
                    let m = b.send(from, to).unwrap();
                    in_flight.push((to, m));
                }
                1 if !in_flight.is_empty() => {
                    let k = rng.random_range(0..in_flight.len());
                    let (to, m) = in_flight.remove(k);
                    b.receive(to, m).unwrap();
                }
                _ => {
                    b.internal(pid(rng.random_range(0..n))).unwrap();
                }
            }
        }
        b.finish()
    }

    /// Brute-force chain detection by recursive search, for cross-checking.
    fn brute_force_chain(z: &Computation, prefix_len: usize, sets: &[ProcessSet]) -> bool {
        fn rec(
            z: &Computation,
            hb: &CausalClosure,
            prefix_len: usize,
            sets: &[ProcessSet],
            k: usize,
            last: Option<usize>,
        ) -> bool {
            if k == sets.len() {
                return true;
            }
            for j in prefix_len..z.len() {
                if !z.events()[j].is_on_set(sets[k]) {
                    continue;
                }
                let ok = match last {
                    None => true,
                    Some(i) => hb.happened_before(i, j),
                };
                if ok && rec(z, hb, prefix_len, sets, k + 1, Some(j)) {
                    return true;
                }
            }
            false
        }
        let hb = CausalClosure::new(z);
        rec(z, &hb, prefix_len, sets, 0, None)
    }

    proptest! {
        #[test]
        fn prop_matches_brute_force(
            seed in 0u64..120,
            steps in 1usize..18,
            chain_seed in 0u64..40,
        ) {
            use rand::rngs::StdRng;
            use rand::{RngExt, SeedableRng};
            let z = random_computation(3, steps, seed);
            let mut rng = StdRng::seed_from_u64(chain_seed);
            let n_sets = rng.random_range(1..4usize);
            let sets: Vec<ProcessSet> = (0..n_sets)
                .map(|_| ProcessSet::from_bits(u128::from(rng.random_range(1u8..8))))
                .collect();
            let prefix_len = rng.random_range(0..=z.len());
            let fast = find_chain(&z, prefix_len, &sets);
            let slow = brute_force_chain(&z, prefix_len, &sets);
            prop_assert_eq!(fast.is_some(), slow);
            if let Some(w) = fast {
                prop_assert!(w.verify(&z, prefix_len, &sets));
            }
        }
    }
}
