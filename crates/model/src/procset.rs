//! Process sets and their algebra.
//!
//! The paper quantifies almost everything over *sets* of processes `P`,
//! with `P̄ = D − P` denoting the complement against the full system `D`.
//! [`ProcessSet`] is a dense bit-set over process indices supporting the
//! full algebra: union, intersection, difference, complement (w.r.t. an
//! explicit universe), subset tests and iteration.

use crate::id::ProcessId;
use std::fmt;
use std::ops::{BitAnd, BitOr, Sub};

/// A set of processes, represented as a dense bit-set.
///
/// Supports systems of up to [`ProcessSet::CAPACITY`] processes, which
/// comfortably covers the paper's examples (≤ 5 processes) and the largest
/// simulations in this repository.
///
/// # Example
///
/// ```
/// use hpl_model::{ProcessId, ProcessSet};
///
/// let d = ProcessSet::full(5); // D = {p0..p4}
/// let p = ProcessSet::from_indices([0, 1]);
/// let pbar = p.complement(d); // P̄ = D − P
/// assert_eq!(pbar, ProcessSet::from_indices([2, 3, 4]));
/// assert!(p.union(pbar) == d);
/// assert!(p.intersection(pbar).is_empty());
/// assert!(p.contains(ProcessId::new(0)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessSet(u128);

impl ProcessSet {
    /// Maximum number of processes in a single system.
    pub const CAPACITY: usize = 128;

    /// The empty set `{ }`.
    ///
    /// Note the paper's convention: `x [{ }] y` holds for *all* pairs of
    /// computations — the empty set cannot distinguish anything.
    pub const EMPTY: ProcessSet = ProcessSet(0);

    /// Creates the empty process set.
    #[must_use]
    pub const fn new() -> Self {
        Self::EMPTY
    }

    /// Creates the full set `D = {p0, …, p(n-1)}` for a system of `n`
    /// processes.
    ///
    /// # Panics
    ///
    /// Panics if `n > ProcessSet::CAPACITY`.
    #[must_use]
    pub fn full(n: usize) -> Self {
        assert!(n <= Self::CAPACITY, "system size {n} exceeds capacity");
        if n == Self::CAPACITY {
            ProcessSet(u128::MAX)
        } else {
            ProcessSet((1u128 << n) - 1)
        }
    }

    /// Creates a singleton set `{p}`.
    #[must_use]
    pub fn singleton(p: ProcessId) -> Self {
        ProcessSet(1u128 << p.index())
    }

    /// Creates a set from an iterator of process indices.
    #[must_use]
    pub fn from_indices<I: IntoIterator<Item = usize>>(indices: I) -> Self {
        let mut bits = 0u128;
        for i in indices {
            assert!(i < Self::CAPACITY, "process index {i} exceeds capacity");
            bits |= 1u128 << i;
        }
        ProcessSet(bits)
    }

    /// Returns `true` if `p ∈ self`.
    #[must_use]
    pub fn contains(self, p: ProcessId) -> bool {
        self.0 & (1u128 << p.index()) != 0
    }

    /// Inserts a process, returning `true` if it was newly added.
    pub fn insert(&mut self, p: ProcessId) -> bool {
        let bit = 1u128 << p.index();
        let added = self.0 & bit == 0;
        self.0 |= bit;
        added
    }

    /// Removes a process, returning `true` if it was present.
    pub fn remove(&mut self, p: ProcessId) -> bool {
        let bit = 1u128 << p.index();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Returns `true` if the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns the number of processes in the set.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Set union `self ∪ other`.
    #[must_use]
    pub fn union(self, other: Self) -> Self {
        ProcessSet(self.0 | other.0)
    }

    /// Set intersection `self ∩ other`.
    #[must_use]
    pub fn intersection(self, other: Self) -> Self {
        ProcessSet(self.0 & other.0)
    }

    /// Set difference `self − other`.
    #[must_use]
    pub fn difference(self, other: Self) -> Self {
        ProcessSet(self.0 & !other.0)
    }

    /// Complement `P̄ = D − P` with respect to an explicit universe `d`.
    ///
    /// The paper writes `P̄` for `D − P` where `D` is the set of all
    /// processes of the system under consideration; the universe must be
    /// supplied because a `ProcessSet` does not know its system.
    #[must_use]
    pub fn complement(self, d: Self) -> Self {
        d.difference(self)
    }

    /// Returns `true` if `self ⊆ other`.
    #[must_use]
    pub fn is_subset(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// Returns `true` if `self ⊇ other`.
    #[must_use]
    pub fn is_superset(self, other: Self) -> bool {
        other.is_subset(self)
    }

    /// Returns `true` if the sets share no process.
    #[must_use]
    pub fn is_disjoint(self, other: Self) -> bool {
        self.0 & other.0 == 0
    }

    /// Iterates over the members in increasing index order.
    pub fn iter(self) -> Iter {
        Iter(self.0)
    }

    /// The subset of this set assigned to shard `index` of `count` under a
    /// deterministic round-robin partition by member rank.
    ///
    /// The shards `0..count` are pairwise disjoint and their union is
    /// `self`, so per-process work (partition building, view projection)
    /// can be split across workers without coordination.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `index >= count`.
    ///
    /// # Example
    ///
    /// ```
    /// use hpl_model::ProcessSet;
    /// let d = ProcessSet::full(5);
    /// let s0 = d.shard(0, 2); // ranks 0, 2, 4 → {p0, p2, p4}
    /// let s1 = d.shard(1, 2); // ranks 1, 3    → {p1, p3}
    /// assert_eq!(s0.union(s1), d);
    /// assert!(s0.is_disjoint(s1));
    /// ```
    #[must_use]
    pub fn shard(self, index: usize, count: usize) -> Self {
        assert!(count > 0, "shard count must be positive");
        assert!(index < count, "shard index {index} out of range 0..{count}");
        self.iter()
            .enumerate()
            .filter(|(rank, _)| rank % count == index)
            .map(|(_, p)| p)
            .collect()
    }

    /// Returns the raw bit representation (for hashing/indexing layers).
    #[must_use]
    pub fn bits(self) -> u128 {
        self.0
    }

    /// Reconstructs a set from raw bits produced by [`ProcessSet::bits`].
    #[must_use]
    pub fn from_bits(bits: u128) -> Self {
        ProcessSet(bits)
    }
}

impl BitOr for ProcessSet {
    type Output = ProcessSet;
    fn bitor(self, rhs: Self) -> Self {
        self.union(rhs)
    }
}

impl BitAnd for ProcessSet {
    type Output = ProcessSet;
    fn bitand(self, rhs: Self) -> Self {
        self.intersection(rhs)
    }
}

impl Sub for ProcessSet {
    type Output = ProcessSet;
    fn sub(self, rhs: Self) -> Self {
        self.difference(rhs)
    }
}

impl FromIterator<ProcessId> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut s = ProcessSet::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl Extend<ProcessId> for ProcessSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl From<ProcessId> for ProcessSet {
    fn from(p: ProcessId) -> Self {
        ProcessSet::singleton(p)
    }
}

impl IntoIterator for ProcessSet {
    type Item = ProcessId;
    type IntoIter = Iter;
    fn into_iter(self) -> Iter {
        self.iter()
    }
}

/// Iterator over the members of a [`ProcessSet`], in increasing index
/// order. Produced by [`ProcessSet::iter`].
#[derive(Clone, Debug)]
pub struct Iter(u128);

impl Iterator for Iter {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        if self.0 == 0 {
            None
        } else {
            let idx = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(ProcessId::new(idx))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl fmt::Debug for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProcessSet{self}")
    }
}

impl fmt::Display for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for p in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_full() {
        assert!(ProcessSet::EMPTY.is_empty());
        assert_eq!(ProcessSet::full(0), ProcessSet::EMPTY);
        assert_eq!(ProcessSet::full(3).len(), 3);
        assert_eq!(
            ProcessSet::full(ProcessSet::CAPACITY).len(),
            ProcessSet::CAPACITY
        );
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = ProcessSet::new();
        let p = ProcessId::new(5);
        assert!(!s.contains(p));
        assert!(s.insert(p));
        assert!(!s.insert(p));
        assert!(s.contains(p));
        assert!(s.remove(p));
        assert!(!s.remove(p));
        assert!(s.is_empty());
    }

    #[test]
    fn complement_against_universe() {
        let d = ProcessSet::full(4);
        let p = ProcessSet::from_indices([1, 3]);
        let pbar = p.complement(d);
        assert_eq!(pbar, ProcessSet::from_indices([0, 2]));
        assert_eq!(pbar.complement(d), p);
        assert_eq!(p.union(pbar), d);
        assert!(p.is_disjoint(pbar));
    }

    #[test]
    fn subset_and_superset() {
        let a = ProcessSet::from_indices([0, 1]);
        let b = ProcessSet::from_indices([0, 1, 2]);
        assert!(a.is_subset(b));
        assert!(b.is_superset(a));
        assert!(!b.is_subset(a));
        assert!(ProcessSet::EMPTY.is_subset(a));
    }

    #[test]
    fn iteration_order() {
        let s = ProcessSet::from_indices([7, 2, 0, 100]);
        let got: Vec<usize> = s.iter().map(ProcessId::index).collect();
        assert_eq!(got, vec![0, 2, 7, 100]);
        assert_eq!(s.iter().len(), 4);
    }

    #[test]
    fn display_format() {
        let s = ProcessSet::from_indices([0, 2]);
        assert_eq!(s.to_string(), "{p0,p2}");
        assert_eq!(ProcessSet::EMPTY.to_string(), "{}");
    }

    #[test]
    fn operators() {
        let a = ProcessSet::from_indices([0, 1]);
        let b = ProcessSet::from_indices([1, 2]);
        assert_eq!(a | b, ProcessSet::from_indices([0, 1, 2]));
        assert_eq!(a & b, ProcessSet::from_indices([1]));
        assert_eq!(a - b, ProcessSet::from_indices([0]));
    }

    #[test]
    fn from_iterator_and_extend() {
        let ps: ProcessSet = (0..3).map(ProcessId::new).collect();
        assert_eq!(ps, ProcessSet::full(3));
        let mut s = ProcessSet::new();
        s.extend([ProcessId::new(9)]);
        assert!(s.contains(ProcessId::new(9)));
    }

    proptest! {
        #[test]
        fn prop_union_commutative(a in 0u128.., b in 0u128..) {
            let (a, b) = (ProcessSet::from_bits(a), ProcessSet::from_bits(b));
            prop_assert_eq!(a.union(b), b.union(a));
        }

        #[test]
        fn prop_de_morgan(a in 0u128.., b in 0u128..) {
            let d = ProcessSet::full(ProcessSet::CAPACITY);
            let (a, b) = (ProcessSet::from_bits(a), ProcessSet::from_bits(b));
            prop_assert_eq!(
                a.union(b).complement(d),
                a.complement(d).intersection(b.complement(d))
            );
        }

        #[test]
        fn prop_len_matches_iter(a in 0u128..) {
            let a = ProcessSet::from_bits(a);
            prop_assert_eq!(a.len(), a.iter().count());
        }

        #[test]
        fn prop_subset_iff_union(a in 0u128.., b in 0u128..) {
            let (a, b) = (ProcessSet::from_bits(a), ProcessSet::from_bits(b));
            prop_assert_eq!(a.is_subset(b), a.union(b) == b);
        }
    }

    #[test]
    fn shard_partitions_round_robin() {
        let d = ProcessSet::from_indices([0, 3, 5, 9, 11]);
        for count in 1..=6 {
            let mut seen = ProcessSet::new();
            for index in 0..count {
                let s = d.shard(index, count);
                assert!(s.is_subset(d));
                assert!(s.is_disjoint(seen), "shards must not overlap");
                seen = seen.union(s);
            }
            assert_eq!(seen, d, "shards must cover the set");
        }
        // round-robin by rank, not by raw index
        assert_eq!(d.shard(0, 2), ProcessSet::from_indices([0, 5, 11]));
        assert_eq!(d.shard(1, 2), ProcessSet::from_indices([3, 9]));
        // degenerate cases
        assert_eq!(d.shard(0, 1), d);
        assert!(ProcessSet::EMPTY.shard(2, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_index_out_of_range_panics() {
        let _ = ProcessSet::full(3).shard(2, 2);
    }

    #[test]
    fn empty_set_edge_cases() {
        let e = ProcessSet::EMPTY;
        assert_eq!(e.len(), 0);
        assert_eq!(e.iter().next(), None);
        assert_eq!(e.bits(), 0);
        assert!(e.is_subset(e) && e.is_superset(e) && e.is_disjoint(e));
        let d = ProcessSet::full(5);
        assert_eq!(e.union(d), d);
        assert_eq!(e.intersection(d), e);
        assert_eq!(e.difference(d), e);
        assert_eq!(e.complement(d), d);
        assert!(e.is_subset(d));
        assert!(!e.contains(ProcessId::new(0)));
    }

    #[test]
    fn full_universe_edge_cases() {
        let d = ProcessSet::full(ProcessSet::CAPACITY);
        assert_eq!(d.len(), ProcessSet::CAPACITY);
        assert_eq!(d.bits(), u128::MAX);
        assert_eq!(d.complement(d), ProcessSet::EMPTY);
        assert_eq!(d.union(d), d);
        assert_eq!(d.intersection(d), d);
        assert!(d.contains(ProcessId::new(ProcessSet::CAPACITY - 1)));
        assert_eq!(
            d.iter().count(),
            ProcessSet::CAPACITY,
            "iteration must cover the widest universe"
        );
        // a smaller universe's full set is a strict subset
        let small = ProcessSet::full(3);
        assert!(small.is_subset(d) && !d.is_subset(small));
    }

    #[test]
    fn singleton_edge_cases() {
        let last = ProcessId::new(ProcessSet::CAPACITY - 1);
        let s = ProcessSet::singleton(last);
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![last]);
        assert_eq!(s.bits(), 1u128 << 127);
        assert!(s.contains(last));
        assert!(!s.contains(ProcessId::new(0)));
        // insert is idempotent, remove of a non-member is a no-op
        let mut t = s;
        assert!(!t.insert(last), "re-inserting a member reports no change");
        assert_eq!(t, s);
        assert!(
            !t.remove(ProcessId::new(0)),
            "removing a non-member is a no-op"
        );
        assert!(t.remove(last));
        assert!(t.is_empty());
        // singleton round-trips through from_indices and from_bits
        assert_eq!(ProcessSet::from_indices([127]), s);
        assert_eq!(ProcessSet::from_bits(s.bits()), s);
    }
}
