//! Error types for the model layer.

use crate::id::{EventId, MessageId, ProcessId};
use std::error::Error;
use std::fmt;

/// Errors raised when constructing or validating computations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A receive event occurs with no earlier corresponding send.
    ReceiveBeforeSend {
        /// The offending receive event.
        receive: EventId,
        /// The message that was never sent (earlier).
        message: MessageId,
    },
    /// The same message is received more than once.
    DuplicateReceive {
        /// The message received twice.
        message: MessageId,
    },
    /// The same message is sent more than once (messages are
    /// distinguished, paper §2).
    DuplicateSend {
        /// The message sent twice.
        message: MessageId,
    },
    /// The same event id occurs twice in one computation.
    DuplicateEvent {
        /// The repeated event id.
        event: EventId,
    },
    /// A receive's source or message does not match the send it claims.
    MismatchedReceive {
        /// The offending receive event.
        receive: EventId,
        /// The message in question.
        message: MessageId,
    },
    /// A message was addressed to one process but received by another.
    MisdeliveredMessage {
        /// The message in question.
        message: MessageId,
        /// The process the send addressed.
        addressed_to: ProcessId,
        /// The process that performed the receive.
        received_by: ProcessId,
    },
    /// A process index is outside the declared system size.
    ProcessOutOfRange {
        /// The offending process.
        process: ProcessId,
        /// The declared number of processes.
        system_size: usize,
    },
    /// The same event id maps to different (process, kind) payloads in two
    /// computations of one event space.
    InconsistentEvent {
        /// The ambiguous event id.
        event: EventId,
    },
    /// An operation expected `x ≤ z` (prefix) but it does not hold.
    NotAPrefix,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ReceiveBeforeSend { receive, message } => {
                write!(f, "receive {receive} of {message} has no earlier send")
            }
            ModelError::DuplicateReceive { message } => {
                write!(f, "message {message} received more than once")
            }
            ModelError::DuplicateSend { message } => {
                write!(f, "message {message} sent more than once")
            }
            ModelError::DuplicateEvent { event } => {
                write!(f, "event {event} occurs more than once")
            }
            ModelError::MismatchedReceive { receive, message } => {
                write!(f, "receive {receive} does not match the send of {message}")
            }
            ModelError::MisdeliveredMessage {
                message,
                addressed_to,
                received_by,
            } => write!(
                f,
                "message {message} addressed to {addressed_to} but received by {received_by}"
            ),
            ModelError::ProcessOutOfRange {
                process,
                system_size,
            } => write!(
                f,
                "process {process} outside system of {system_size} processes"
            ),
            ModelError::InconsistentEvent { event } => {
                write!(f, "event id {event} bound to two different events")
            }
            ModelError::NotAPrefix => {
                write!(f, "expected a prefix relationship between computations")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errors: Vec<ModelError> = vec![
            ModelError::ReceiveBeforeSend {
                receive: EventId::new(1),
                message: MessageId::new(2),
            },
            ModelError::DuplicateReceive {
                message: MessageId::new(2),
            },
            ModelError::DuplicateSend {
                message: MessageId::new(2),
            },
            ModelError::DuplicateEvent {
                event: EventId::new(3),
            },
            ModelError::MismatchedReceive {
                receive: EventId::new(1),
                message: MessageId::new(2),
            },
            ModelError::MisdeliveredMessage {
                message: MessageId::new(2),
                addressed_to: ProcessId::new(0),
                received_by: ProcessId::new(1),
            },
            ModelError::ProcessOutOfRange {
                process: ProcessId::new(9),
                system_size: 3,
            },
            ModelError::InconsistentEvent {
                event: EventId::new(4),
            },
            ModelError::NotAPrefix,
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("expected"));
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_object() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
        let e: Box<dyn Error> = Box::new(ModelError::NotAPrefix);
        assert!(e.source().is_none());
    }
}
