//! Process permutations and protocol automorphism groups.
//!
//! The paper's isomorphism result (§4) implies that knowledge formulas
//! cannot distinguish computations that differ only by a relabeling of
//! *symmetric* processes: if `x [D] y` and `x ≠ y` then `y` is a
//! permutation of `x`. A protocol whose processes are interchangeable
//! therefore enumerates many relabeled variants of essentially one
//! computation. [`Permutation`] is a relabeling of the process indices;
//! [`SymmetryGroup`] is a declaration of the automorphism group under
//! which a protocol is invariant — the input to the symmetry-quotient
//! machinery in `hpl-core`.
//!
//! A permutation `π` is an **automorphism** of a protocol when relabeling
//! every process through `π` maps the protocol onto itself: process
//! `π(p)` with the relabeled view offers exactly the relabeled actions of
//! `p`. Declaring a group that is *not* made of automorphisms makes the
//! quotient unsound; `hpl-core` ships an executable closure check.

use crate::computation::Computation;
use crate::event::{Event, EventKind};
use crate::id::ProcessId;
use crate::procset::ProcessSet;
use std::collections::BTreeSet;
use std::fmt;

/// A permutation of the process indices `0..n` of one system.
///
/// # Example
///
/// ```
/// use hpl_model::{Permutation, ProcessId};
/// let rot = Permutation::rotation(4, 1); // i ↦ i+1 (mod 4)
/// assert_eq!(rot.apply(ProcessId::new(3)), ProcessId::new(0));
/// let inv = rot.inverse();
/// assert!(rot.compose(&inv).is_identity());
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Permutation {
    // image[i] = π(i)
    image: Vec<u16>,
}

impl Permutation {
    /// The identity permutation on `n` processes.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Permutation {
            image: (0..n).map(|i| i as u16).collect(),
        }
    }

    /// Builds a permutation from its image vector (`image[i] = π(i)`).
    ///
    /// # Panics
    ///
    /// Panics if `image` is not a permutation of `0..image.len()`.
    #[must_use]
    pub fn from_images<I: IntoIterator<Item = usize>>(image: I) -> Self {
        let image: Vec<u16> = image.into_iter().map(|i| i as u16).collect();
        let n = image.len();
        let mut seen = vec![false; n];
        for &i in &image {
            assert!(
                (i as usize) < n && !seen[i as usize],
                "not a permutation of 0..{n}"
            );
            seen[i as usize] = true;
        }
        Permutation { image }
    }

    /// The cyclic rotation `i ↦ i + shift (mod n)`.
    #[must_use]
    pub fn rotation(n: usize, shift: usize) -> Self {
        Permutation::from_images((0..n).map(|i| (i + shift) % n))
    }

    /// The line reversal `i ↦ n − 1 − i`.
    #[must_use]
    pub fn reversal(n: usize) -> Self {
        Permutation::from_images((0..n).rev())
    }

    /// The ring reflection through process `0`: `i ↦ (n − i) mod n`.
    /// Fixes `0` (and, for even `n`, process `n/2`).
    #[must_use]
    pub fn ring_reflection(n: usize) -> Self {
        Permutation::from_images((0..n).map(|i| (n - i) % n))
    }

    /// The transposition swapping `a` and `b` on `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    #[must_use]
    pub fn transposition(n: usize, a: usize, b: usize) -> Self {
        assert!(a < n && b < n, "transposition out of range");
        Permutation::from_images((0..n).map(|i| {
            if i == a {
                b
            } else if i == b {
                a
            } else {
                i
            }
        }))
    }

    /// Number of processes this permutation acts on.
    #[must_use]
    pub fn len(&self) -> usize {
        self.image.len()
    }

    /// Returns `true` for the (degenerate) permutation of zero processes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.image.is_empty()
    }

    /// Applies the permutation to a process id.
    ///
    /// # Panics
    ///
    /// Panics if the process is out of range.
    #[must_use]
    pub fn apply(&self, p: ProcessId) -> ProcessId {
        ProcessId::new(self.image[p.index()] as usize)
    }

    /// The image index of `i` (like [`Permutation::apply`] on raw
    /// indices).
    #[must_use]
    pub fn image_of(&self, i: usize) -> usize {
        self.image[i] as usize
    }

    /// Tests whether this is the identity.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.image.iter().enumerate().all(|(i, &j)| i as u16 == j)
    }

    /// The inverse permutation `π⁻¹`.
    #[must_use]
    pub fn inverse(&self) -> Self {
        let mut image = vec![0u16; self.image.len()];
        for (i, &j) in self.image.iter().enumerate() {
            image[j as usize] = i as u16;
        }
        Permutation { image }
    }

    /// Tests whether this permutation **stabilizes** a process set:
    /// `π(P) = P` (as a set). The stabilizer condition is what licenses
    /// storing a nested `P knows _` verdict at an orbit representative —
    /// see the symmetry-soundness checker in `hpl-core`.
    ///
    /// # Panics
    ///
    /// Panics if a member of the set is out of the permutation's range.
    #[must_use]
    pub fn stabilizes(&self, p: ProcessSet) -> bool {
        p.permuted(self) == p
    }

    /// The composition `self ∘ other` (apply `other` first).
    ///
    /// # Panics
    ///
    /// Panics if the permutations act on different system sizes.
    #[must_use]
    pub fn compose(&self, other: &Self) -> Self {
        assert_eq!(self.len(), other.len(), "system size mismatch");
        Permutation {
            image: other
                .image
                .iter()
                .map(|&j| self.image[j as usize])
                .collect(),
        }
    }
}

impl fmt::Display for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, &j) in self.image.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{j}")?;
        }
        write!(f, ")")
    }
}

impl ProcessSet {
    /// The image of this set under a permutation: `{π(p) : p ∈ self}`.
    ///
    /// # Panics
    ///
    /// Panics if a member is out of the permutation's range.
    #[must_use]
    pub fn permuted(self, pi: &Permutation) -> Self {
        self.iter().map(|p| pi.apply(p)).collect()
    }
}

impl Computation {
    /// The relabeled computation `π·self`: every event moved to the
    /// permuted process, with send destinations and receive sources
    /// mapped consistently. Event and message ids are **kept**, so the
    /// result is a valid standalone computation but must not be mixed
    /// into a universe whose event space binds those ids to the original
    /// labels.
    ///
    /// # Panics
    ///
    /// Panics if any event names a process outside the permutation's
    /// range.
    #[must_use]
    pub fn permuted(&self, pi: &Permutation) -> Computation {
        let events: Vec<Event> = self
            .iter()
            .map(|e| {
                let kind = match e.kind() {
                    EventKind::Send { to, message } => EventKind::Send {
                        to: pi.apply(to),
                        message,
                    },
                    EventKind::Receive { from, message } => EventKind::Receive {
                        from: pi.apply(from),
                        message,
                    },
                    EventKind::Internal { action } => EventKind::Internal { action },
                };
                Event::new(e.id(), pi.apply(e.process()), kind)
            })
            .collect();
        Computation::from_events(self.system_size(), events)
            .expect("relabeling preserves system-computation validity")
    }
}

/// Hard cap on the expanded order of a declared symmetry group, guarding
/// against accidental `Full { n: 20 }`-style explosions.
pub const MAX_GROUP_ORDER: usize = 40_320; // 8!

/// A declared automorphism group of a protocol over `n` processes.
///
/// Protocols declare the group under which they are invariant (see
/// [`Permutation`] for what invariance means); the quotient enumeration
/// in `hpl-core` collapses each orbit of computations under the group to
/// one canonical representative.
///
/// # Example
///
/// ```
/// use hpl_model::SymmetryGroup;
/// assert_eq!(SymmetryGroup::Full { n: 4 }.order(), 24);
/// assert_eq!(SymmetryGroup::Rotations { n: 5 }.order(), 5);
/// assert_eq!(SymmetryGroup::Trivial.order(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum SymmetryGroup {
    /// No symmetry: only the identity. The safe default — every protocol
    /// is invariant under it.
    #[default]
    Trivial,
    /// The full symmetric group `Sₙ`: all processes interchangeable.
    Full {
        /// System size.
        n: usize,
    },
    /// The cyclic group of ring rotations `i ↦ i + k (mod n)`.
    Rotations {
        /// System size.
        n: usize,
    },
    /// The group generated by an explicit list of permutations (closed
    /// under composition and inverse by [`SymmetryGroup::elements`]).
    Generated(
        /// Generator list; all must act on the same system size.
        Vec<Permutation>,
    ),
}

impl SymmetryGroup {
    /// The subgroup of `Full {{ n }}` fixing process `fixed` — all
    /// relabelings of the remaining processes. Useful for protocols with
    /// one distinguished initiator among otherwise identical processes.
    #[must_use]
    pub fn fixing(n: usize, fixed: usize) -> Self {
        assert!(fixed < n, "fixed process out of range");
        let others: Vec<usize> = (0..n).filter(|&i| i != fixed).collect();
        if others.len() < 2 {
            return SymmetryGroup::Trivial;
        }
        let mut gens = vec![Permutation::transposition(n, others[0], others[1])];
        if others.len() > 2 {
            // the cycle over the non-fixed processes
            let mut image: Vec<usize> = (0..n).collect();
            for w in others.windows(2) {
                image[w[0]] = w[1];
            }
            image[*others.last().expect("non-empty")] = others[0];
            gens.push(Permutation::from_images(image));
        }
        SymmetryGroup::Generated(gens)
    }

    /// Expands the group to its full element list: closed under
    /// composition and inverse, identity first, remaining elements in a
    /// deterministic (lexicographic image) order.
    ///
    /// # Panics
    ///
    /// Panics if the expanded order exceeds [`MAX_GROUP_ORDER`], or if
    /// generators act on mismatched system sizes.
    #[must_use]
    pub fn elements(&self) -> Vec<Permutation> {
        match self {
            SymmetryGroup::Trivial => vec![Permutation::identity(0)],
            SymmetryGroup::Full { n } => {
                let order: usize = (1..=*n).product();
                assert!(
                    order <= MAX_GROUP_ORDER,
                    "S_{n} has order {order} > MAX_GROUP_ORDER"
                );
                let mut out = Vec::with_capacity(order.max(1));
                let mut image: Vec<usize> = (0..*n).collect();
                heap_permutations(&mut image, &mut out);
                out.sort();
                out
            }
            SymmetryGroup::Rotations { n } => (0..(*n).max(1))
                .map(|k| Permutation::rotation(*n, k))
                .collect(),
            SymmetryGroup::Generated(gens) => {
                let n = gens.first().map_or(0, Permutation::len);
                assert!(
                    gens.iter().all(|g| g.len() == n),
                    "generators act on mismatched system sizes"
                );
                let mut closed: BTreeSet<Permutation> = BTreeSet::new();
                closed.insert(Permutation::identity(n));
                let mut frontier: Vec<Permutation> = vec![Permutation::identity(n)];
                while let Some(g) = frontier.pop() {
                    for h in gens {
                        for next in [g.compose(h), h.inverse().compose(&g)] {
                            if closed.insert(next.clone()) {
                                assert!(
                                    closed.len() <= MAX_GROUP_ORDER,
                                    "generated group exceeds MAX_GROUP_ORDER"
                                );
                                frontier.push(next);
                            }
                        }
                    }
                }
                closed.into_iter().collect()
            }
        }
    }

    /// Expands the group for a system of `n` processes: like
    /// [`SymmetryGroup::elements`], but the identity-only groups
    /// ([`SymmetryGroup::Trivial`], an empty generator list) are widened
    /// to act on all `n` processes, and a mismatched declared size is
    /// rejected.
    ///
    /// # Panics
    ///
    /// Panics if the group is declared for a system size other than `n`,
    /// or under the same conditions as [`SymmetryGroup::elements`].
    #[must_use]
    pub fn elements_for(&self, n: usize) -> Vec<Permutation> {
        match self {
            SymmetryGroup::Trivial => vec![Permutation::identity(n)],
            SymmetryGroup::Generated(gens) if gens.is_empty() => vec![Permutation::identity(n)],
            SymmetryGroup::Full { n: m } | SymmetryGroup::Rotations { n: m } => {
                assert_eq!(*m, n, "symmetry group declared for {m} processes, not {n}");
                self.elements()
            }
            SymmetryGroup::Generated(gens) => {
                assert_eq!(
                    gens[0].len(),
                    n,
                    "symmetry generators act on {} processes, not {n}",
                    gens[0].len()
                );
                self.elements()
            }
        }
    }

    /// A **generating set** of the group for a system of `n` processes:
    /// a (usually tiny) list of permutations whose closure under
    /// composition and inverse is the whole group. Stabilizer questions
    /// (`π(P) = P` for every group element) reduce to the generators —
    /// the stabilizer of a set is a subgroup — so callers testing
    /// invariance should iterate this list, not the expanded
    /// [`elements_for`](SymmetryGroup::elements_for).
    ///
    /// The identity-only groups return an empty list.
    ///
    /// # Panics
    ///
    /// Panics if the group is declared for a system size other than `n`.
    #[must_use]
    pub fn generators_for(&self, n: usize) -> Vec<Permutation> {
        match self {
            SymmetryGroup::Trivial => Vec::new(),
            SymmetryGroup::Full { n: m } => {
                assert_eq!(*m, n, "symmetry group declared for {m} processes, not {n}");
                match n {
                    0 | 1 => Vec::new(),
                    2 => vec![Permutation::transposition(2, 0, 1)],
                    // S_n = ⟨(0 1), (0 1 … n−1)⟩
                    _ => vec![
                        Permutation::transposition(n, 0, 1),
                        Permutation::rotation(n, 1),
                    ],
                }
            }
            SymmetryGroup::Rotations { n: m } => {
                assert_eq!(*m, n, "symmetry group declared for {m} processes, not {n}");
                if n <= 1 {
                    Vec::new()
                } else {
                    vec![Permutation::rotation(n, 1)]
                }
            }
            SymmetryGroup::Generated(gens) => {
                if let Some(first) = gens.first() {
                    assert_eq!(
                        first.len(),
                        n,
                        "symmetry generators act on {} processes, not {n}",
                        first.len()
                    );
                }
                gens.iter().filter(|g| !g.is_identity()).cloned().collect()
            }
        }
    }

    /// Does every element of the group stabilize `p` (`π(P) = P`)? Tested
    /// on the generators only — the stabilizer of a set is a subgroup, so
    /// generator stabilization implies group stabilization.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`SymmetryGroup::generators_for`].
    #[must_use]
    pub fn stabilizes(&self, p: ProcessSet, n: usize) -> bool {
        self.generators_for(n).iter().all(|g| g.stabilizes(p))
    }

    /// The order of the group (`elements().len()`).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SymmetryGroup::elements`].
    #[must_use]
    pub fn order(&self) -> usize {
        match self {
            SymmetryGroup::Trivial => 1,
            SymmetryGroup::Full { n } => (1..=*n).product::<usize>().max(1),
            SymmetryGroup::Rotations { n } => (*n).max(1),
            SymmetryGroup::Generated(_) => self.elements().len(),
        }
    }

    /// Returns `true` if the group is (extensionally) just the identity.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.order() == 1
    }
}

/// How an atomic predicate behaves under process relabeling through a
/// protocol's declared [`SymmetryGroup`] — the per-atom metadata behind
/// the symmetry-soundness checker in `hpl-core`.
///
/// The declaration is **relative to the declared group**: an atom that
/// names a process the group fixes (e.g. "p0 crashed" under a group
/// fixing `p0`) is `Invariant` even though it is not invariant under
/// arbitrary relabelings. Declarations are trusted by the static
/// checker; `hpl-core` ships an executable spot-check
/// (`Interpretation::validate_symmetry`) that verifies them on an
/// enumerated universe.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AtomInvariance {
    /// The atom's verdict may change when symmetric processes are
    /// relabeled. The safe default: the checker then refuses to store
    /// the atom's verdict on behalf of a whole orbit inside a knowledge
    /// operator.
    #[default]
    Dependent,
    /// The atom's verdict is unchanged by every relabeling in the
    /// declared group: `b at π·x = b at x` for all group elements `π`.
    Invariant,
}

/// Heap's algorithm, collecting every permutation of `scratch`.
fn heap_permutations(scratch: &mut Vec<usize>, out: &mut Vec<Permutation>) {
    fn rec(k: usize, scratch: &mut Vec<usize>, out: &mut Vec<Permutation>) {
        if k <= 1 {
            out.push(Permutation::from_images(scratch.iter().copied()));
            return;
        }
        for i in 0..k {
            rec(k - 1, scratch, out);
            if k.is_multiple_of(2) {
                scratch.swap(i, k - 1);
            } else {
                scratch.swap(0, k - 1);
            }
        }
    }
    let k = scratch.len();
    if k == 0 {
        out.push(Permutation::identity(0));
        return;
    }
    rec(k, scratch, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ComputationBuilder;

    #[test]
    fn identity_inverse_compose() {
        let id = Permutation::identity(5);
        assert!(id.is_identity());
        let rot = Permutation::rotation(5, 2);
        assert!(!rot.is_identity());
        assert!(rot.compose(&rot.inverse()).is_identity());
        assert!(rot.inverse().compose(&rot).is_identity());
        assert_eq!(rot.compose(&id), rot);
        // apply matches image_of
        for i in 0..5 {
            assert_eq!(rot.apply(ProcessId::new(i)).index(), rot.image_of(i));
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn bad_image_rejected() {
        let _ = Permutation::from_images([0, 0, 1]);
    }

    #[test]
    fn named_constructors() {
        assert_eq!(
            Permutation::reversal(4),
            Permutation::from_images([3, 2, 1, 0])
        );
        assert_eq!(
            Permutation::ring_reflection(4),
            Permutation::from_images([0, 3, 2, 1])
        );
        assert_eq!(
            Permutation::transposition(3, 0, 2),
            Permutation::from_images([2, 1, 0])
        );
        assert_eq!(Permutation::rotation(3, 0), Permutation::identity(3));
        assert_eq!(Permutation::rotation(4, 1).to_string(), "(1 2 3 0)");
    }

    #[test]
    fn process_set_permuted() {
        let s = ProcessSet::from_indices([0, 2]);
        let rot = Permutation::rotation(4, 1);
        assert_eq!(s.permuted(&rot), ProcessSet::from_indices([1, 3]));
        assert_eq!(
            s.permuted(&rot).permuted(&rot.inverse()),
            s,
            "inverse round-trips"
        );
    }

    #[test]
    fn computation_permuted_is_valid_relabeling() {
        let mut b = ComputationBuilder::new(3);
        let m = b.send(ProcessId::new(0), ProcessId::new(1)).unwrap();
        b.receive(ProcessId::new(1), m).unwrap();
        b.internal(ProcessId::new(2)).unwrap();
        let z = b.finish();
        let rot = Permutation::rotation(3, 1);
        let zr = z.permuted(&rot);
        assert_eq!(zr.len(), z.len());
        assert_eq!(zr.project(ProcessId::new(1)).len(), 1); // old p0's send
        assert_eq!(zr.project(ProcessId::new(2)).len(), 1); // old p1's receive
        assert_eq!(zr.project(ProcessId::new(0)).len(), 1); // old p2's internal
        assert!(zr.project(ProcessId::new(1))[0].is_send());
        assert!(zr.project(ProcessId::new(2))[0].is_receive());
        // double rotation composes
        assert_eq!(zr.permuted(&rot), z.permuted(&rot.compose(&rot)));
        // identity is a fixpoint
        assert_eq!(z.permuted(&Permutation::identity(3)), z);
    }

    #[test]
    fn full_group_elements() {
        let els = SymmetryGroup::Full { n: 3 }.elements();
        assert_eq!(els.len(), 6);
        assert!(els[0].is_identity(), "identity sorts first");
        let unique: BTreeSet<_> = els.iter().cloned().collect();
        assert_eq!(unique.len(), 6);
        assert_eq!(SymmetryGroup::Full { n: 0 }.elements().len(), 1);
        assert_eq!(SymmetryGroup::Full { n: 1 }.order(), 1);
    }

    #[test]
    fn rotations_group() {
        let els = SymmetryGroup::Rotations { n: 4 }.elements();
        assert_eq!(els.len(), 4);
        assert!(els.contains(&Permutation::rotation(4, 3)));
        assert_eq!(SymmetryGroup::Rotations { n: 4 }.order(), 4);
    }

    #[test]
    fn generated_closure() {
        // one transposition generates a 2-element group
        let g = SymmetryGroup::Generated(vec![Permutation::transposition(3, 0, 1)]);
        assert_eq!(g.order(), 2);
        // adjacent transpositions generate S_n
        let g = SymmetryGroup::Generated(vec![
            Permutation::transposition(4, 0, 1),
            Permutation::transposition(4, 1, 2),
            Permutation::transposition(4, 2, 3),
        ]);
        assert_eq!(g.order(), 24);
        let full: BTreeSet<_> = SymmetryGroup::Full { n: 4 }
            .elements()
            .into_iter()
            .collect();
        let gen: BTreeSet<_> = g.elements().into_iter().collect();
        assert_eq!(full, gen);
    }

    #[test]
    fn fixing_subgroup() {
        // fixing p0 among 4 processes = S_3 on {1,2,3}
        let g = SymmetryGroup::fixing(4, 0);
        assert_eq!(g.order(), 6);
        assert!(g
            .elements()
            .iter()
            .all(|p| p.apply(ProcessId::new(0)) == ProcessId::new(0)));
        // degenerate cases collapse to the trivial group
        assert!(SymmetryGroup::fixing(2, 0).is_trivial());
        assert!(SymmetryGroup::fixing(1, 0).is_trivial());
        // fixing an interior process
        let g = SymmetryGroup::fixing(3, 1);
        assert_eq!(g.order(), 2);
    }

    #[test]
    fn generators_generate_the_declared_group() {
        for (group, n) in [
            (SymmetryGroup::Full { n: 4 }, 4),
            (SymmetryGroup::Rotations { n: 5 }, 5),
            (SymmetryGroup::fixing(4, 0), 4),
            (SymmetryGroup::Trivial, 3),
        ] {
            let gens = group.generators_for(n);
            let closure = SymmetryGroup::Generated(if gens.is_empty() {
                vec![Permutation::identity(n)]
            } else {
                gens.clone()
            });
            let a: BTreeSet<_> = closure.elements().into_iter().collect();
            let b: BTreeSet<_> = group.elements_for(n).into_iter().collect();
            assert_eq!(a, b, "{group:?}: generators must span the group");
        }
    }

    #[test]
    fn stabilizer_tests() {
        let rot = Permutation::rotation(4, 1);
        assert!(rot.stabilizes(ProcessSet::full(4)));
        assert!(!rot.stabilizes(ProcessSet::from_indices([0])));
        assert!(Permutation::transposition(4, 1, 2).stabilizes(ProcessSet::from_indices([1, 2])));

        let fix0 = SymmetryGroup::fixing(4, 0);
        assert!(fix0.stabilizes(ProcessSet::singleton(ProcessId::new(0)), 4));
        assert!(fix0.stabilizes(ProcessSet::from_indices([1, 2, 3]), 4));
        assert!(fix0.stabilizes(ProcessSet::full(4), 4));
        assert!(!fix0.stabilizes(ProcessSet::singleton(ProcessId::new(2)), 4));
        // the trivial group stabilizes everything
        assert!(SymmetryGroup::Trivial.stabilizes(ProcessSet::from_indices([1]), 3));
        // rotations stabilize only ∅ and the full set
        let rots = SymmetryGroup::Rotations { n: 4 };
        assert!(rots.stabilizes(ProcessSet::EMPTY, 4));
        assert!(rots.stabilizes(ProcessSet::full(4), 4));
        assert!(!rots.stabilizes(ProcessSet::from_indices([0, 2]), 4));
    }

    #[test]
    fn atom_invariance_defaults_dependent() {
        assert_eq!(AtomInvariance::default(), AtomInvariance::Dependent);
        assert_ne!(AtomInvariance::Invariant, AtomInvariance::Dependent);
    }

    #[test]
    fn trivial_group() {
        assert!(SymmetryGroup::Trivial.is_trivial());
        assert_eq!(SymmetryGroup::Trivial.elements().len(), 1);
        assert_eq!(SymmetryGroup::default(), SymmetryGroup::Trivial);
        assert!(!SymmetryGroup::Full { n: 3 }.is_trivial());
    }
}
