//! # hpl-model — the distributed-computation substrate
//!
//! This crate implements Section 2 ("Model of a Distributed System") and
//! Section 3.1 ("Process Chains") of Chandy & Misra, *How Processes Learn*
//! (PODC 1985): processes, events, system computations, Lamport causality
//! and process chains.
//!
//! The model, verbatim from the paper:
//!
//! * a distributed system is a finite set of processes;
//! * a process is characterized by a prefix-closed set of *process
//!   computations*, each a finite sequence of events on that process;
//! * an event is a *send*, a *receive* or an *internal* event;
//! * a finite event sequence `z` is a **system computation** iff every
//!   projection `z|p` is a process computation and every receive in `z` is
//!   preceded in `z` by its corresponding send;
//! * all events and all messages are distinguished.
//!
//! (A definition-by-definition map from the paper's §2–§5 to modules,
//! key types and certifying tests lives in `docs/CONCORDANCE.md` at the
//! repository root.)
//!
//! The central type is [`Computation`], a validated system computation.
//! [`ProcessSet`] provides the set algebra the isomorphism calculus needs,
//! [`causality`] the happened-before relation (`→` in the paper),
//! [`chain`] detection of process chains `⟨P₁ … Pₙ⟩` inside a suffix
//! `(x, z)` — the combinatorial core of the paper's Theorem 1 — and
//! [`cuts`] the lattice of consistent global states.
//!
//! # Example
//!
//! ```
//! use hpl_model::{ComputationBuilder, ProcessId, ProcessSet};
//!
//! # fn main() -> Result<(), hpl_model::ModelError> {
//! let p = ProcessId::new(0);
//! let q = ProcessId::new(1);
//!
//! // p sends a message which q receives, then q does some local work.
//! let mut b = ComputationBuilder::new(2);
//! let m = b.send(p, q)?;
//! b.receive(q, m)?;
//! b.internal(q)?;
//! let z = b.finish();
//!
//! assert_eq!(z.len(), 3);
//! assert_eq!(z.project(p).len(), 1);
//! assert_eq!(z.project(q).len(), 2);
//!
//! // The suffix after the send contains a process chain <{p} {q}>.
//! let x = z.prefix(1);
//! let chain = hpl_model::chain::find_chain(
//!     &z,
//!     x.len(),
//!     &[ProcessSet::singleton(p), ProcessSet::singleton(q)],
//! );
//! assert!(chain.is_none()); // the send itself is in the prefix, so no chain
//! let chain = hpl_model::chain::find_chain(
//!     &z,
//!     0,
//!     &[ProcessSet::singleton(p), ProcessSet::singleton(q)],
//! );
//! assert!(chain.is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod causality;
pub mod chain;
pub mod computation;
pub mod cuts;
pub mod error;
pub mod event;
pub mod id;
pub mod procset;
pub mod symmetry;
pub mod trace;

pub use builder::{ComputationBuilder, ScenarioPool};
pub use causality::{CausalClosure, VectorClock};
pub use chain::{find_chain, has_chain, ChainWitness};
pub use computation::Computation;
pub use cuts::{Cut, CutLattice};
pub use error::ModelError;
pub use event::{Event, EventKind};
pub use id::{ActionId, EventId, MessageId, ProcessId};
pub use procset::ProcessSet;
pub use symmetry::{AtomInvariance, Permutation, SymmetryGroup};
