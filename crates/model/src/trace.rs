//! A compact, line-oriented text codec for computations.
//!
//! The workspace deliberately avoids serialization dependencies (see
//! DESIGN.md §5); this module provides a small human-readable format for
//! persisting and exchanging traces:
//!
//! ```text
//! computation 3          # header: system size
//! S 0 0 1 0              # send:    event process to   message
//! R 1 1 0 0              # receive: event process from message
//! I 2 2 7                # internal: event process action
//! ```
//!
//! Comments (`# …`) and blank lines are ignored. [`to_text`] and
//! [`from_text`] round-trip every valid computation.

use crate::computation::Computation;
use crate::error::ModelError;
use crate::event::{Event, EventKind};
use crate::id::{ActionId, EventId, MessageId, ProcessId};
use std::error::Error;
use std::fmt;

/// Errors produced when parsing the text trace format.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceParseError {
    /// The `computation <n>` header line is missing or malformed.
    MissingHeader,
    /// A line does not match any known record shape.
    BadRecord {
        /// 1-based line number.
        line: usize,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
    },
    /// The parsed events do not form a valid computation.
    Invalid(ModelError),
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceParseError::MissingHeader => write!(f, "missing 'computation <n>' header"),
            TraceParseError::BadRecord { line } => write!(f, "unrecognized record on line {line}"),
            TraceParseError::BadNumber { line } => write!(f, "bad numeric field on line {line}"),
            TraceParseError::Invalid(e) => write!(f, "parsed events are invalid: {e}"),
        }
    }
}

impl Error for TraceParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceParseError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for TraceParseError {
    fn from(e: ModelError) -> Self {
        TraceParseError::Invalid(e)
    }
}

/// Serializes a computation to the text trace format.
#[must_use]
pub fn to_text(z: &Computation) -> String {
    let mut out = String::new();
    out.push_str(&format!("computation {}\n", z.system_size()));
    for e in z.iter() {
        match e.kind() {
            EventKind::Send { to, message } => out.push_str(&format!(
                "S {} {} {} {}\n",
                e.id().index(),
                e.process().index(),
                to.index(),
                message.index()
            )),
            EventKind::Receive { from, message } => out.push_str(&format!(
                "R {} {} {} {}\n",
                e.id().index(),
                e.process().index(),
                from.index(),
                message.index()
            )),
            EventKind::Internal { action } => out.push_str(&format!(
                "I {} {} {}\n",
                e.id().index(),
                e.process().index(),
                action.tag()
            )),
        }
    }
    out
}

/// Parses a computation from the text trace format.
///
/// # Errors
///
/// Returns a [`TraceParseError`] if the header is missing, a record is
/// malformed, or the event sequence is not a valid system computation.
pub fn from_text(text: &str) -> Result<Computation, TraceParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.split('#').next().unwrap_or("").trim()))
        .filter(|(_, l)| !l.is_empty());

    let (hline, header) = lines.next().ok_or(TraceParseError::MissingHeader)?;
    let mut hparts = header.split_whitespace();
    if hparts.next() != Some("computation") {
        return Err(TraceParseError::MissingHeader);
    }
    let system_size: usize = hparts
        .next()
        .ok_or(TraceParseError::MissingHeader)?
        .parse()
        .map_err(|_| TraceParseError::BadNumber { line: hline })?;
    if hparts.next().is_some() {
        return Err(TraceParseError::MissingHeader);
    }

    let mut events = Vec::new();
    for (line, l) in lines {
        let mut parts = l.split_whitespace();
        let tag = parts.next().ok_or(TraceParseError::BadRecord { line })?;
        let num = |parts: &mut std::str::SplitWhitespace<'_>| -> Result<usize, TraceParseError> {
            parts
                .next()
                .ok_or(TraceParseError::BadRecord { line })?
                .parse()
                .map_err(|_| TraceParseError::BadNumber { line })
        };
        let event = match tag {
            "S" => {
                let id = num(&mut parts)?;
                let proc = num(&mut parts)?;
                let to = num(&mut parts)?;
                let msg = num(&mut parts)?;
                Event::new(
                    EventId::new(id),
                    ProcessId::new(proc),
                    EventKind::Send {
                        to: ProcessId::new(to),
                        message: MessageId::new(msg),
                    },
                )
            }
            "R" => {
                let id = num(&mut parts)?;
                let proc = num(&mut parts)?;
                let from = num(&mut parts)?;
                let msg = num(&mut parts)?;
                Event::new(
                    EventId::new(id),
                    ProcessId::new(proc),
                    EventKind::Receive {
                        from: ProcessId::new(from),
                        message: MessageId::new(msg),
                    },
                )
            }
            "I" => {
                let id = num(&mut parts)?;
                let proc = num(&mut parts)?;
                let action = num(&mut parts)?;
                Event::new(
                    EventId::new(id),
                    ProcessId::new(proc),
                    EventKind::Internal {
                        action: ActionId::new(action as u32),
                    },
                )
            }
            _ => return Err(TraceParseError::BadRecord { line }),
        };
        if parts.next().is_some() {
            return Err(TraceParseError::BadRecord { line });
        }
        events.push(event);
    }
    Ok(Computation::from_events(system_size, events)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ComputationBuilder;
    use proptest::prelude::*;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn roundtrip_simple() {
        let mut b = ComputationBuilder::new(3);
        let m = b.send(pid(0), pid(1)).unwrap();
        b.receive(pid(1), m).unwrap();
        b.internal_with(pid(2), ActionId::new(7)).unwrap();
        let z = b.finish();
        let text = to_text(&z);
        let back = from_text(&text).unwrap();
        assert_eq!(z, back);
    }

    #[test]
    fn roundtrip_empty() {
        let z = Computation::empty(5);
        assert_eq!(from_text(&to_text(&z)).unwrap(), z);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# a trace\ncomputation 2  # two processes\n\nS 0 0 1 0\n# interleaved comment\nR 1 1 0 0\n";
        let z = from_text(text).unwrap();
        assert_eq!(z.len(), 2);
        assert_eq!(z.system_size(), 2);
    }

    #[test]
    fn header_errors() {
        assert_eq!(from_text("").unwrap_err(), TraceParseError::MissingHeader);
        assert_eq!(
            from_text("S 0 0 1 0").unwrap_err(),
            TraceParseError::MissingHeader
        );
        assert_eq!(
            from_text("computation").unwrap_err(),
            TraceParseError::MissingHeader
        );
        assert!(matches!(
            from_text("computation x").unwrap_err(),
            TraceParseError::BadNumber { .. }
        ));
        assert_eq!(
            from_text("computation 2 extra").unwrap_err(),
            TraceParseError::MissingHeader
        );
    }

    #[test]
    fn record_errors() {
        assert!(matches!(
            from_text("computation 2\nX 0 0 1 0").unwrap_err(),
            TraceParseError::BadRecord { line: 2 }
        ));
        assert!(matches!(
            from_text("computation 2\nS 0 0 1").unwrap_err(),
            TraceParseError::BadRecord { line: 2 }
        ));
        assert!(matches!(
            from_text("computation 2\nS 0 0 1 0 9").unwrap_err(),
            TraceParseError::BadRecord { line: 2 }
        ));
        assert!(matches!(
            from_text("computation 2\nI a 0 0").unwrap_err(),
            TraceParseError::BadNumber { line: 2 }
        ));
    }

    #[test]
    fn invalid_computation_rejected() {
        let err = from_text("computation 2\nR 0 1 0 0").unwrap_err();
        assert!(matches!(err, TraceParseError::Invalid(_)));
        use std::error::Error;
        assert!(err.source().is_some());
    }

    fn random_computation(n: usize, steps: usize, seed: u64) -> Computation {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = ComputationBuilder::new(n);
        let mut in_flight: Vec<(ProcessId, MessageId)> = Vec::new();
        for _ in 0..steps {
            match rng.random_range(0..3) {
                0 => {
                    let from = pid(rng.random_range(0..n));
                    let to = pid(rng.random_range(0..n));
                    let m = b.send(from, to).unwrap();
                    in_flight.push((to, m));
                }
                1 if !in_flight.is_empty() => {
                    let k = rng.random_range(0..in_flight.len());
                    let (to, m) = in_flight.remove(k);
                    b.receive(to, m).unwrap();
                }
                _ => {
                    b.internal(pid(rng.random_range(0..n))).unwrap();
                }
            }
        }
        b.finish()
    }

    proptest! {
        #[test]
        fn prop_roundtrip(seed in 0u64..300, steps in 0usize..40) {
            let z = random_computation(4, steps, seed);
            prop_assert_eq!(from_text(&to_text(&z)).unwrap(), z);
        }
    }
}
