//! Consistent cuts: the global states of a computation.
//!
//! The paper's motivation — "a process determine\[s\] facts about the
//! overall system computation" — is about *global states*. A **cut** of a
//! computation assigns each process a prefix of its local computation; it
//! is **consistent** iff no received message is still unsent, i.e. the
//! cut's event set is causally downward closed. Consistent cuts are
//! exactly the valid computations assembled from per-process prefixes
//! (up to permutation), exactly what a Chandy–Lamport snapshot records,
//! and they form a **distributive lattice** under pointwise min/max —
//! all three facts are implemented and tested here.
//!
//! The number of consistent cuts also measures how much "global
//! uncertainty" a computation carries: a fully sequential computation has
//! `m + 1` cuts, `n` fully independent processes have `∏(mᵢ + 1)`.

use crate::causality::CausalClosure;
use crate::computation::Computation;
use crate::event::Event;
use crate::id::ProcessId;
use std::fmt;

/// A cut: for each process, how many of its events are included.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Cut {
    counts: Vec<usize>,
}

impl Cut {
    /// The empty cut for a system of `n` processes.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        Cut { counts: vec![0; n] }
    }

    /// Builds a cut from per-process event counts.
    #[must_use]
    pub fn from_counts(counts: Vec<usize>) -> Self {
        Cut { counts }
    }

    /// Number of events of process `p` included in the cut.
    #[must_use]
    pub fn count(&self, p: ProcessId) -> usize {
        self.counts[p.index()]
    }

    /// Per-process counts.
    #[must_use]
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total number of events in the cut.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Returns `true` if the cut contains no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Pointwise ≤ (the lattice order).
    #[must_use]
    pub fn le(&self, other: &Cut) -> bool {
        self.counts.iter().zip(&other.counts).all(|(a, b)| a <= b)
    }

    /// The lattice meet: pointwise minimum.
    #[must_use]
    pub fn meet(&self, other: &Cut) -> Cut {
        Cut {
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(&a, &b)| a.min(b))
                .collect(),
        }
    }

    /// The lattice join: pointwise maximum.
    #[must_use]
    pub fn join(&self, other: &Cut) -> Cut {
        Cut {
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(&a, &b)| a.max(b))
                .collect(),
        }
    }
}

impl fmt::Display for Cut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

/// Analysis of a computation's consistent cuts.
#[derive(Debug)]
pub struct CutLattice<'a> {
    z: &'a Computation,
    /// positions of each process's events, in order
    proc_events: Vec<Vec<usize>>,
    hb: CausalClosure,
}

impl<'a> CutLattice<'a> {
    /// Prepares cut analysis for `z`.
    #[must_use]
    pub fn new(z: &'a Computation) -> Self {
        let n = z.system_size();
        let mut proc_events = vec![Vec::new(); n];
        for (i, e) in z.iter().enumerate() {
            proc_events[e.process().index()].push(i);
        }
        CutLattice {
            z,
            proc_events,
            hb: CausalClosure::new(z),
        }
    }

    /// The full cut (every event included).
    #[must_use]
    pub fn full_cut(&self) -> Cut {
        Cut::from_counts(self.proc_events.iter().map(Vec::len).collect())
    }

    /// Is the cut consistent? (Downward closed under happened-before:
    /// every event causally below an included event is included.)
    #[must_use]
    pub fn is_consistent(&self, cut: &Cut) -> bool {
        // collect included positions
        let mut included = vec![false; self.z.len()];
        for (pi, events) in self.proc_events.iter().enumerate() {
            let k = cut.count(ProcessId::new(pi));
            if k > events.len() {
                return false;
            }
            for &pos in &events[..k] {
                included[pos] = true;
            }
        }
        // downward closure: for each included position, all its causes
        // must be included
        for j in 0..self.z.len() {
            if !included[j] {
                continue;
            }
            let row = self.hb.row(j);
            for i in 0..self.z.len() {
                if row[i / 64] & (1u64 << (i % 64)) != 0 && !included[i] {
                    return false;
                }
            }
        }
        true
    }

    /// The events of a consistent cut, in `z`'s order — always a valid
    /// computation (the formal content of "a consistent cut is a possible
    /// global state").
    ///
    /// # Panics
    ///
    /// Panics if the cut is not consistent for `z`.
    #[must_use]
    pub fn cut_computation(&self, cut: &Cut) -> Computation {
        assert!(self.is_consistent(cut), "cut must be consistent");
        let mut take = vec![0usize; self.z.system_size()];
        let events: Vec<Event> = self
            .z
            .iter()
            .filter(|e| {
                let pi = e.process().index();
                if take[pi] < cut.count(e.process()) {
                    take[pi] += 1;
                    true
                } else {
                    false
                }
            })
            .collect();
        Computation::from_events(self.z.system_size(), events)
            .expect("consistent cuts are valid computations")
    }

    /// Enumerates every consistent cut (exponential in general; intended
    /// for analysis of small computations).
    #[must_use]
    pub fn enumerate(&self) -> Vec<Cut> {
        let n = self.z.system_size();
        let mut out = Vec::new();
        let mut counts = vec![0usize; n];
        loop {
            let cut = Cut::from_counts(counts.clone());
            if self.is_consistent(&cut) {
                out.push(cut);
            }
            // odometer increment over the product of (0..=mᵢ)
            let mut i = 0;
            loop {
                if i == n {
                    return out;
                }
                counts[i] += 1;
                if counts[i] <= self.proc_events[i].len() {
                    break;
                }
                counts[i] = 0;
                i += 1;
            }
        }
    }

    /// Number of consistent cuts.
    #[must_use]
    pub fn count(&self) -> usize {
        self.enumerate().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ComputationBuilder;
    use proptest::prelude::*;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn sequential_chain() -> Computation {
        // p0 → p1 → p2, fully causal
        let mut b = ComputationBuilder::new(3);
        let m1 = b.send(pid(0), pid(1)).unwrap();
        b.receive(pid(1), m1).unwrap();
        let m2 = b.send(pid(1), pid(2)).unwrap();
        b.receive(pid(2), m2).unwrap();
        b.finish()
    }

    fn independent(n: usize, k: usize) -> Computation {
        let mut b = ComputationBuilder::new(n);
        for i in 0..n {
            for _ in 0..k {
                b.internal(pid(i)).unwrap();
            }
        }
        b.finish()
    }

    #[test]
    fn sequential_chain_has_linear_cuts() {
        let z = sequential_chain();
        let lattice = CutLattice::new(&z);
        // fully causal: exactly m+1 cuts
        assert_eq!(lattice.count(), z.len() + 1);
    }

    #[test]
    fn independent_processes_have_product_cuts() {
        let z = independent(3, 2);
        let lattice = CutLattice::new(&z);
        assert_eq!(lattice.count(), 3usize.pow(3)); // (2+1)^3
    }

    #[test]
    fn empty_and_full_cuts_are_consistent() {
        let z = sequential_chain();
        let lattice = CutLattice::new(&z);
        assert!(lattice.is_consistent(&Cut::empty(3)));
        assert!(lattice.is_consistent(&lattice.full_cut()));
        assert!(Cut::empty(3).is_empty());
        assert_eq!(lattice.full_cut().len(), z.len());
    }

    #[test]
    fn inconsistent_cut_detected() {
        let z = sequential_chain();
        let lattice = CutLattice::new(&z);
        // include p1's receive without p0's send
        let bad = Cut::from_counts(vec![0, 1, 0]);
        assert!(!lattice.is_consistent(&bad));
        // over-long counts are inconsistent, not a panic
        let too_long = Cut::from_counts(vec![9, 0, 0]);
        assert!(!lattice.is_consistent(&too_long));
    }

    #[test]
    fn cut_computations_are_valid() {
        let z = sequential_chain();
        let lattice = CutLattice::new(&z);
        for cut in lattice.enumerate() {
            let c = lattice.cut_computation(&cut);
            assert_eq!(c.len(), cut.len());
            // validity is enforced by the constructor; also each
            // projection is a prefix of z's
            for i in 0..3 {
                let cp = c.projection_ids(pid(i));
                let zp = z.projection_ids(pid(i));
                assert!(zp.starts_with(&cp));
            }
        }
    }

    #[test]
    #[should_panic(expected = "consistent")]
    fn cut_computation_rejects_inconsistent() {
        let z = sequential_chain();
        let lattice = CutLattice::new(&z);
        let _ = lattice.cut_computation(&Cut::from_counts(vec![0, 1, 0]));
    }

    #[test]
    fn display_format() {
        assert_eq!(Cut::from_counts(vec![1, 0, 2]).to_string(), "⟨1,0,2⟩");
    }

    fn random_computation(n: usize, steps: usize, seed: u64) -> Computation {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = ComputationBuilder::new(n);
        let mut in_flight: Vec<(ProcessId, crate::id::MessageId)> = Vec::new();
        for _ in 0..steps {
            match rng.random_range(0..3) {
                0 => {
                    let from = pid(rng.random_range(0..n));
                    let to = pid(rng.random_range(0..n));
                    let m = b.send(from, to).unwrap();
                    in_flight.push((to, m));
                }
                1 if !in_flight.is_empty() => {
                    let k = rng.random_range(0..in_flight.len());
                    let (to, m) = in_flight.remove(k);
                    b.receive(to, m).unwrap();
                }
                _ => {
                    b.internal(pid(rng.random_range(0..n))).unwrap();
                }
            }
        }
        b.finish()
    }

    proptest! {
        /// Consistent cuts form a lattice: closed under meet and join.
        #[test]
        fn prop_cuts_form_a_lattice(seed in 0u64..60, steps in 1usize..10) {
            let z = random_computation(3, steps, seed);
            let lattice = CutLattice::new(&z);
            let cuts = lattice.enumerate();
            for a in &cuts {
                for b in &cuts {
                    prop_assert!(lattice.is_consistent(&a.meet(b)), "meet of {a} and {b}");
                    prop_assert!(lattice.is_consistent(&a.join(b)), "join of {a} and {b}");
                }
            }
        }

        /// Every prefix of the computation induces a consistent cut, so
        /// #cuts ≥ #distinct prefix cuts.
        #[test]
        fn prop_prefixes_are_cuts(seed in 0u64..60, steps in 1usize..12) {
            let z = random_computation(3, steps, seed);
            let lattice = CutLattice::new(&z);
            for l in 0..=z.len() {
                let pfx = z.prefix(l);
                let counts: Vec<usize> = (0..3)
                    .map(|i| pfx.projection_ids(pid(i)).len())
                    .collect();
                prop_assert!(lattice.is_consistent(&Cut::from_counts(counts)));
            }
        }

        /// The cut order is respected: a ≤ b implies |a| ≤ |b|, and the
        /// meet/join are the glb/lub.
        #[test]
        fn prop_lattice_laws(seed in 0u64..40, steps in 1usize..8) {
            let z = random_computation(2, steps, seed);
            let lattice = CutLattice::new(&z);
            let cuts = lattice.enumerate();
            for a in &cuts {
                for b in &cuts {
                    let m = a.meet(b);
                    let j = a.join(b);
                    prop_assert!(m.le(a) && m.le(b));
                    prop_assert!(a.le(&j) && b.le(&j));
                    if a.le(b) {
                        prop_assert_eq!(&m, a);
                        prop_assert_eq!(&j, b);
                    }
                }
            }
        }
    }
}
