//! System computations.
//!
//! A finite sequence of events `z` is a **system computation** iff
//!
//! 1. for all processes `p`, the projection `z|p` is a process computation
//!    of `p`, and
//! 2. for every receive event in `z` there is a *corresponding send* that
//!    occurs earlier in `z`.
//!
//! (Paper §2.) Condition 1 is relative to a protocol; in the free model any
//! sequence of events on a process is a process computation, and protocol
//! layers impose their own membership checks. Condition 2, together with
//! the "all events and messages are distinguished" convention, is enforced
//! structurally by [`Computation::from_events`].
//!
//! System computations are prefix closed — [`Computation::prefix`] is total.

use crate::error::ModelError;
use crate::event::{Event, EventKind};
use crate::id::{EventId, MessageId, ProcessId};
use crate::procset::ProcessSet;
use std::collections::HashMap;
use std::fmt;

/// A validated system computation over a system of `n` processes.
///
/// Immutable once constructed; all mutating operations return new values.
///
/// # Example
///
/// ```
/// use hpl_model::{Computation, ComputationBuilder, ProcessId, ProcessSet};
/// # fn main() -> Result<(), hpl_model::ModelError> {
/// let p = ProcessId::new(0);
/// let q = ProcessId::new(1);
/// let mut b = ComputationBuilder::new(2);
/// let m = b.send(p, q)?;
/// b.receive(q, m)?;
/// let z = b.finish();
///
/// let x = z.prefix(1); // prefixes of computations are computations
/// assert!(x.is_prefix_of(&z));
/// // x and z are isomorphic with respect to p (no p-events in the suffix):
/// assert!(x.agrees_on(&z, ProcessSet::singleton(p)));
/// assert!(!x.agrees_on(&z, ProcessSet::singleton(q)));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Computation {
    system_size: usize,
    events: Vec<Event>,
}

impl Computation {
    /// Creates the empty computation (`null` in the paper) for a system of
    /// `system_size` processes.
    #[must_use]
    pub fn empty(system_size: usize) -> Self {
        Computation {
            system_size,
            events: Vec::new(),
        }
    }

    /// Validates an event sequence as a system computation.
    ///
    /// # Errors
    ///
    /// Returns an error if any receive lacks an earlier corresponding send,
    /// a message is sent or received twice, an event id repeats, a message
    /// is delivered to a process other than its addressee, or an event
    /// names a process outside `0..system_size`.
    pub fn from_events(system_size: usize, events: Vec<Event>) -> Result<Self, ModelError> {
        validate(system_size, &events)?;
        Ok(Computation {
            system_size,
            events,
        })
    }

    /// Wraps an event sequence **already known** to be a valid system
    /// computation, skipping re-validation.
    ///
    /// This is the fast path for engines that maintain validity
    /// structurally (e.g. protocol enumeration, where every extension of a
    /// valid computation by an enabled step is valid by construction).
    /// Debug builds still re-validate; release builds trust the caller.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the sequence is not a valid system
    /// computation. Release builds perform no check — constructing an
    /// invalid computation through this path breaks downstream invariants
    /// (it cannot cause memory unsafety; the crate forbids `unsafe`).
    #[must_use]
    pub fn from_events_trusted(system_size: usize, events: Vec<Event>) -> Self {
        debug_assert!(
            validate(system_size, &events).is_ok(),
            "from_events_trusted given an invalid event sequence"
        );
        Computation {
            system_size,
            events,
        }
    }

    /// Number of processes in the system this computation belongs to.
    #[must_use]
    pub fn system_size(&self) -> usize {
        self.system_size
    }

    /// The full process set `D` of the system.
    #[must_use]
    pub fn all_processes(&self) -> ProcessSet {
        ProcessSet::full(self.system_size)
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if this is the empty computation `null`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events, in computation order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The event at position `i`, if any.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<Event> {
        self.events.get(i).copied()
    }

    /// Iterates over the events in order.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, Event>> {
        self.events.iter().copied()
    }

    /// The projection `z|p`: the subsequence of events on process `p`.
    #[must_use]
    pub fn project(&self, p: ProcessId) -> Vec<Event> {
        self.events.iter().filter(|e| e.is_on(p)).copied().collect()
    }

    /// The projection as a sequence of event ids (sufficient for
    /// isomorphism checks, since ids determine events).
    #[must_use]
    pub fn projection_ids(&self, p: ProcessId) -> Vec<EventId> {
        self.events
            .iter()
            .filter(|e| e.is_on(p))
            .map(|e| e.id())
            .collect()
    }

    /// The subsequence of events on any process in `set`.
    #[must_use]
    pub fn project_set(&self, set: ProcessSet) -> Vec<Event> {
        self.events
            .iter()
            .filter(|e| e.is_on_set(set))
            .copied()
            .collect()
    }

    /// Tests the paper's relation `x [p] y` directly between two
    /// computations: the projections on `p` are equal.
    #[must_use]
    pub fn agrees_on_process(&self, other: &Computation, p: ProcessId) -> bool {
        let mut a = self.events.iter().filter(|e| e.is_on(p));
        let mut b = other.events.iter().filter(|e| e.is_on(p));
        loop {
            match (a.next(), b.next()) {
                (None, None) => return true,
                (Some(x), Some(y)) if x.id() == y.id() => {}
                _ => return false,
            }
        }
    }

    /// Tests `x [P] y`: for all `p ∈ P`, `x|p = y|p`.
    ///
    /// Note `x [{ }] y` holds for all computations, per the paper.
    #[must_use]
    pub fn agrees_on(&self, other: &Computation, set: ProcessSet) -> bool {
        set.iter().all(|p| self.agrees_on_process(other, p))
    }

    /// Returns `true` if `self ≤ other` (`self` is a prefix of `other`).
    #[must_use]
    pub fn is_prefix_of(&self, other: &Computation) -> bool {
        self.system_size == other.system_size
            && self.events.len() <= other.events.len()
            && self
                .events
                .iter()
                .zip(&other.events)
                .all(|(a, b)| a.id() == b.id())
    }

    /// The prefix of length `len` (system computations are prefix closed,
    /// so this is total).
    ///
    /// # Panics
    ///
    /// Panics if `len > self.len()`.
    #[must_use]
    pub fn prefix(&self, len: usize) -> Computation {
        assert!(len <= self.events.len(), "prefix length out of range");
        Computation {
            system_size: self.system_size,
            events: self.events[..len].to_vec(),
        }
    }

    /// All proper and improper prefixes, shortest first (including `null`
    /// and `self`).
    #[must_use]
    pub fn prefixes(&self) -> Vec<Computation> {
        (0..=self.events.len()).map(|l| self.prefix(l)).collect()
    }

    /// The suffix `(x, z)` of `self = z` after the prefix `x`: the events
    /// of `z` with the first `prefix_len` removed.
    ///
    /// # Panics
    ///
    /// Panics if `prefix_len > self.len()`.
    #[must_use]
    pub fn suffix_after(&self, prefix_len: usize) -> &[Event] {
        assert!(prefix_len <= self.events.len(), "suffix start out of range");
        &self.events[prefix_len..]
    }

    /// The suffix `(x, z)` by explicit prefix computation.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotAPrefix`] if `x` is not a prefix of `self`.
    pub fn suffix_of(&self, x: &Computation) -> Result<&[Event], ModelError> {
        if !x.is_prefix_of(self) {
            return Err(ModelError::NotAPrefix);
        }
        Ok(self.suffix_after(x.len()))
    }

    /// Concatenation `(y; E)`: extends this computation with more events,
    /// revalidating the result.
    ///
    /// # Errors
    ///
    /// Returns an error if the extended sequence is not a valid system
    /// computation.
    pub fn extended<I: IntoIterator<Item = Event>>(
        &self,
        events: I,
    ) -> Result<Computation, ModelError> {
        let mut all = self.events.clone();
        all.extend(events);
        Computation::from_events(self.system_size, all)
    }

    /// The computation `(y − e)` obtained by deleting event `e` (used by
    /// part 2 of the Principle of Computation Extension).
    ///
    /// # Errors
    ///
    /// Returns an error if the remaining sequence is not a valid
    /// computation (e.g. deleting a send whose receive remains).
    pub fn without_event(&self, e: EventId) -> Result<Computation, ModelError> {
        let remaining: Vec<Event> = self
            .events
            .iter()
            .filter(|ev| ev.id() != e)
            .copied()
            .collect();
        Computation::from_events(self.system_size, remaining)
    }

    /// Returns `true` if `other` is a permutation of `self` (same event
    /// multiset). The paper observes `x [D] y ∧ x ≠ y ⇒ y is a permutation
    /// of x`.
    #[must_use]
    pub fn is_permutation_of(&self, other: &Computation) -> bool {
        if self.events.len() != other.events.len() {
            return false;
        }
        let mut a: Vec<EventId> = self.events.iter().map(|e| e.id()).collect();
        let mut b: Vec<EventId> = other.events.iter().map(|e| e.id()).collect();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }

    /// The last event on process `p`, if any.
    #[must_use]
    pub fn last_event_of(&self, p: ProcessId) -> Option<Event> {
        self.events.iter().rev().find(|e| e.is_on(p)).copied()
    }

    /// Number of send events (= number of messages sent).
    #[must_use]
    pub fn sends(&self) -> usize {
        self.events.iter().filter(|e| e.is_send()).count()
    }

    /// Number of receive events.
    #[must_use]
    pub fn receives(&self) -> usize {
        self.events.iter().filter(|e| e.is_receive()).count()
    }

    /// Messages sent but not yet received ("in flight" at the end of this
    /// computation).
    #[must_use]
    pub fn in_flight(&self) -> Vec<MessageId> {
        let mut sent: Vec<MessageId> = Vec::new();
        let mut received: Vec<MessageId> = Vec::new();
        for e in &self.events {
            match e.kind() {
                EventKind::Send { message, .. } => sent.push(message),
                EventKind::Receive { message, .. } => received.push(message),
                EventKind::Internal { .. } => {}
            }
        }
        sent.retain(|m| !received.contains(m));
        sent
    }

    /// The position of the event with id `e`, if present.
    #[must_use]
    pub fn position_of(&self, e: EventId) -> Option<usize> {
        self.events.iter().position(|ev| ev.id() == e)
    }

    /// A compact single-line rendering, used by `Display` and diagnostics.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::from("⟨");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(' ');
            }
            s.push_str(&e.to_string());
        }
        s.push('⟩');
        s
    }
}

impl fmt::Debug for Computation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Computation[n={}]{}", self.system_size, self.render())
    }
}

impl fmt::Display for Computation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn validate(system_size: usize, events: &[Event]) -> Result<(), ModelError> {
    let mut seen_events: HashMap<EventId, ()> = HashMap::with_capacity(events.len());
    // message -> (sender, addressee)
    let mut sends: HashMap<MessageId, (ProcessId, ProcessId)> = HashMap::new();
    let mut receives: HashMap<MessageId, ()> = HashMap::new();

    for e in events {
        if e.process().index() >= system_size {
            return Err(ModelError::ProcessOutOfRange {
                process: e.process(),
                system_size,
            });
        }
        if seen_events.insert(e.id(), ()).is_some() {
            return Err(ModelError::DuplicateEvent { event: e.id() });
        }
        match e.kind() {
            EventKind::Send { to, message } => {
                if to.index() >= system_size {
                    return Err(ModelError::ProcessOutOfRange {
                        process: to,
                        system_size,
                    });
                }
                if sends.insert(message, (e.process(), to)).is_some() {
                    return Err(ModelError::DuplicateSend { message });
                }
            }
            EventKind::Receive { from, message } => {
                let Some(&(sender, addressee)) = sends.get(&message) else {
                    return Err(ModelError::ReceiveBeforeSend {
                        receive: e.id(),
                        message,
                    });
                };
                if sender != from {
                    return Err(ModelError::MismatchedReceive {
                        receive: e.id(),
                        message,
                    });
                }
                if addressee != e.process() {
                    return Err(ModelError::MisdeliveredMessage {
                        message,
                        addressed_to: addressee,
                        received_by: e.process(),
                    });
                }
                if receives.insert(message, ()).is_some() {
                    return Err(ModelError::DuplicateReceive { message });
                }
            }
            EventKind::Internal { .. } => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ComputationBuilder;
    use crate::id::ActionId;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn two_proc_send_recv() -> Computation {
        let mut b = ComputationBuilder::new(2);
        let m = b.send(pid(0), pid(1)).unwrap();
        b.receive(pid(1), m).unwrap();
        b.internal(pid(1)).unwrap();
        b.finish()
    }

    #[test]
    fn empty_is_valid_and_null() {
        let z = Computation::empty(3);
        assert!(z.is_empty());
        assert_eq!(z.len(), 0);
        assert_eq!(z.system_size(), 3);
        assert_eq!(z.all_processes(), ProcessSet::full(3));
    }

    #[test]
    fn projections() {
        let z = two_proc_send_recv();
        assert_eq!(z.project(pid(0)).len(), 1);
        assert_eq!(z.project(pid(1)).len(), 2);
        assert_eq!(z.project_set(ProcessSet::full(2)).len(), 3);
        assert_eq!(z.projection_ids(pid(1)).len(), 2);
    }

    #[test]
    fn prefix_closure() {
        let z = two_proc_send_recv();
        for pfx in z.prefixes() {
            assert!(pfx.is_prefix_of(&z));
            // Re-validating every prefix must succeed (prefix closure).
            assert!(
                Computation::from_events(z.system_size(), pfx.events().to_vec()).is_ok(),
                "prefix {pfx} should be a valid computation"
            );
        }
        assert_eq!(z.prefixes().len(), z.len() + 1);
    }

    #[test]
    fn receive_before_send_rejected() {
        let recv = Event::new(
            EventId::new(0),
            pid(1),
            EventKind::Receive {
                from: pid(0),
                message: MessageId::new(0),
            },
        );
        let err = Computation::from_events(2, vec![recv]).unwrap_err();
        assert!(matches!(err, ModelError::ReceiveBeforeSend { .. }));
    }

    #[test]
    fn duplicate_event_rejected() {
        let e = Event::new(
            EventId::new(0),
            pid(0),
            EventKind::Internal {
                action: ActionId::new(0),
            },
        );
        let err = Computation::from_events(1, vec![e, e]).unwrap_err();
        assert!(matches!(err, ModelError::DuplicateEvent { .. }));
    }

    #[test]
    fn duplicate_send_and_receive_rejected() {
        let m = MessageId::new(0);
        let s1 = Event::new(
            EventId::new(0),
            pid(0),
            EventKind::Send {
                to: pid(1),
                message: m,
            },
        );
        let s2 = Event::new(
            EventId::new(1),
            pid(0),
            EventKind::Send {
                to: pid(1),
                message: m,
            },
        );
        assert!(matches!(
            Computation::from_events(2, vec![s1, s2]).unwrap_err(),
            ModelError::DuplicateSend { .. }
        ));

        let r1 = Event::new(
            EventId::new(2),
            pid(1),
            EventKind::Receive {
                from: pid(0),
                message: m,
            },
        );
        let r2 = Event::new(
            EventId::new(3),
            pid(1),
            EventKind::Receive {
                from: pid(0),
                message: m,
            },
        );
        assert!(matches!(
            Computation::from_events(2, vec![s1, r1, r2]).unwrap_err(),
            ModelError::DuplicateReceive { .. }
        ));
    }

    #[test]
    fn misdelivery_rejected() {
        let m = MessageId::new(0);
        let s = Event::new(
            EventId::new(0),
            pid(0),
            EventKind::Send {
                to: pid(1),
                message: m,
            },
        );
        let r = Event::new(
            EventId::new(1),
            pid(2),
            EventKind::Receive {
                from: pid(0),
                message: m,
            },
        );
        assert!(matches!(
            Computation::from_events(3, vec![s, r]).unwrap_err(),
            ModelError::MisdeliveredMessage { .. }
        ));
    }

    #[test]
    fn mismatched_source_rejected() {
        let m = MessageId::new(0);
        let s = Event::new(
            EventId::new(0),
            pid(0),
            EventKind::Send {
                to: pid(1),
                message: m,
            },
        );
        let r = Event::new(
            EventId::new(1),
            pid(1),
            EventKind::Receive {
                from: pid(2), // claims the wrong sender
                message: m,
            },
        );
        assert!(matches!(
            Computation::from_events(3, vec![s, r]).unwrap_err(),
            ModelError::MismatchedReceive { .. }
        ));
    }

    #[test]
    fn process_out_of_range_rejected() {
        let e = Event::new(
            EventId::new(0),
            pid(5),
            EventKind::Internal {
                action: ActionId::new(0),
            },
        );
        assert!(matches!(
            Computation::from_events(2, vec![e]).unwrap_err(),
            ModelError::ProcessOutOfRange { .. }
        ));
    }

    #[test]
    fn agrees_on_prefix_suffix() {
        let z = two_proc_send_recv();
        let x = z.prefix(1); // just the send by p0
        assert!(x.agrees_on(&z, ProcessSet::singleton(pid(0))));
        assert!(!x.agrees_on(&z, ProcessSet::singleton(pid(1))));
        // x [{}] z always:
        assert!(x.agrees_on(&z, ProcessSet::EMPTY));
        // suffix is the rest:
        assert_eq!(z.suffix_after(1).len(), 2);
        assert_eq!(z.suffix_of(&x).unwrap().len(), 2);
        assert!(z.suffix_of(&two_proc_send_recv().prefix(0)).is_ok());
    }

    #[test]
    fn suffix_of_non_prefix_errors() {
        let z = two_proc_send_recv();
        // Disjoint id range: genuinely different events, hence not a prefix.
        let mut b = ComputationBuilder::with_id_offsets(2, 500, 500);
        b.internal(pid(0)).unwrap();
        let other = b.finish();
        assert_eq!(z.suffix_of(&other).unwrap_err(), ModelError::NotAPrefix);
    }

    #[test]
    fn permutation_detection() {
        // Build z = send;internal(p1) and y = internal(p1);send — same
        // events, different order, both valid.
        let s = Event::new(
            EventId::new(0),
            pid(0),
            EventKind::Send {
                to: pid(1),
                message: MessageId::new(0),
            },
        );
        let i = Event::new(
            EventId::new(1),
            pid(1),
            EventKind::Internal {
                action: ActionId::new(0),
            },
        );
        let z = Computation::from_events(2, vec![s, i]).unwrap();
        let y = Computation::from_events(2, vec![i, s]).unwrap();
        assert!(z.is_permutation_of(&y));
        assert!(z.agrees_on(&y, ProcessSet::full(2))); // x [D] y
        assert_ne!(z, y);
        assert!(!z.is_permutation_of(&z.prefix(1)));
    }

    #[test]
    fn extended_and_without_event() {
        let z = two_proc_send_recv();
        let extra = Event::new(
            EventId::new(99),
            pid(0),
            EventKind::Internal {
                action: ActionId::new(7),
            },
        );
        let z2 = z.extended([extra]).unwrap();
        assert_eq!(z2.len(), z.len() + 1);

        // deleting the trailing internal event is fine
        let last = z.events()[2].id();
        let z3 = z.without_event(last).unwrap();
        assert_eq!(z3.len(), 2);

        // deleting the send while its receive remains is invalid
        let send_id = z.events()[0].id();
        assert!(z.without_event(send_id).is_err());
    }

    #[test]
    fn in_flight_accounting() {
        let mut b = ComputationBuilder::new(2);
        let m1 = b.send(pid(0), pid(1)).unwrap();
        let _m2 = b.send(pid(0), pid(1)).unwrap();
        b.receive(pid(1), m1).unwrap();
        let z = b.finish();
        assert_eq!(z.sends(), 2);
        assert_eq!(z.receives(), 1);
        assert_eq!(z.in_flight().len(), 1);
    }

    #[test]
    fn last_event_and_position() {
        let z = two_proc_send_recv();
        assert_eq!(z.last_event_of(pid(1)).unwrap().id(), z.events()[2].id());
        assert_eq!(z.position_of(z.events()[1].id()), Some(1));
        assert_eq!(z.position_of(EventId::new(1234)), None);
    }

    #[test]
    fn display_and_debug() {
        let z = two_proc_send_recv();
        assert!(z.to_string().starts_with('⟨'));
        assert!(format!("{z:?}").contains("n=2"));
        assert_eq!(Computation::empty(1).to_string(), "⟨⟩");
    }
}
