//! Lamport causality: the `→` ("happened before") relation of §3.1.
//!
//! For events `e, e'` in a computation `z`, `e → e'` means:
//!
//! 1. `e'` is a receive and `e` is the corresponding send, or
//! 2. `e, e'` are in the same process computation and `e = e'` or `e`
//!    occurs earlier than `e'`, or
//! 3. transitivity.
//!
//! Note the paper's relation is *reflexive* (`e → e` for every event); this
//! module follows that convention.
//!
//! [`CausalClosure`] materializes the full relation as per-event bit-sets
//! (O(m²/64) space), which makes process-chain detection and fusion checks
//! linear-ish scans. [`VectorClock`]s are provided as the classical
//! alternative representation; the two are cross-checked in tests.

use crate::computation::Computation;
use crate::event::EventKind;
use crate::id::{EventId, MessageId, ProcessId};
use std::collections::HashMap;
use std::fmt;

/// A dense bit-matrix closure of the happened-before relation of one
/// computation.
///
/// Row `j` holds the set of positions `i` with `eᵢ → eⱼ` (reflexively
/// including `j` itself).
///
/// # Example
///
/// ```
/// use hpl_model::{CausalClosure, ComputationBuilder, ProcessId};
/// # fn main() -> Result<(), hpl_model::ModelError> {
/// let (p, q) = (ProcessId::new(0), ProcessId::new(1));
/// let mut b = ComputationBuilder::new(2);
/// let m = b.send(p, q)?;      // position 0
/// b.internal(p)?;             // position 1
/// b.receive(q, m)?;           // position 2
/// let z = b.finish();
///
/// let hb = CausalClosure::new(&z);
/// assert!(hb.happened_before(0, 2)); // send → receive
/// assert!(!hb.happened_before(1, 2)); // p's internal is concurrent with the receive
/// assert!(hb.concurrent(1, 2));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CausalClosure {
    len: usize,
    words: usize,
    rows: Vec<u64>,
    id_to_pos: HashMap<EventId, usize>,
}

impl CausalClosure {
    /// Builds the closure for `z` in O(m²/64) time and space.
    #[must_use]
    pub fn new(z: &Computation) -> Self {
        let len = z.len();
        let words = len.div_ceil(64).max(1);
        let mut rows = vec![0u64; len * words];
        let mut id_to_pos = HashMap::with_capacity(len);

        // last position per process and send position per message
        let mut last_on: HashMap<ProcessId, usize> = HashMap::new();
        let mut send_pos: HashMap<MessageId, usize> = HashMap::new();

        for (j, e) in z.iter().enumerate() {
            id_to_pos.insert(e.id(), j);
            let (head, tail) = rows.split_at_mut(j * words);
            let row_j = &mut tail[..words];
            // reflexive
            row_j[j / 64] |= 1u64 << (j % 64);
            // same-process predecessor (its closure subsumes all earlier
            // same-process events by transitivity)
            if let Some(&i) = last_on.get(&e.process()) {
                let row_i = &head[i * words..(i + 1) * words];
                for (w, &bits) in row_i.iter().enumerate() {
                    row_j[w] |= bits;
                }
            }
            // corresponding send for receives
            if let EventKind::Receive { message, .. } = e.kind() {
                if let Some(&i) = send_pos.get(&message) {
                    let row_i = &head[i * words..(i + 1) * words];
                    for (w, &bits) in row_i.iter().enumerate() {
                        row_j[w] |= bits;
                    }
                }
            }
            if let EventKind::Send { message, .. } = e.kind() {
                send_pos.insert(message, j);
            }
            last_on.insert(e.process(), j);
        }

        CausalClosure {
            len,
            words,
            rows,
            id_to_pos,
        }
    }

    /// Number of events covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the underlying computation was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The closure row for position `j`: bit `i` set iff `eᵢ → eⱼ`.
    #[must_use]
    pub fn row(&self, j: usize) -> &[u64] {
        &self.rows[j * self.words..(j + 1) * self.words]
    }

    /// Tests `eᵢ → eⱼ` by position (reflexive).
    ///
    /// # Panics
    ///
    /// Panics if either position is out of range.
    #[must_use]
    pub fn happened_before(&self, i: usize, j: usize) -> bool {
        assert!(i < self.len && j < self.len, "position out of range");
        self.row(j)[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Tests `e → e'` by event id. Returns `None` if either id is not in
    /// the computation.
    #[must_use]
    pub fn happened_before_ids(&self, e: EventId, e2: EventId) -> Option<bool> {
        let i = *self.id_to_pos.get(&e)?;
        let j = *self.id_to_pos.get(&e2)?;
        Some(self.happened_before(i, j))
    }

    /// Two distinct events are *concurrent* iff neither happened before the
    /// other.
    ///
    /// # Panics
    ///
    /// Panics if either position is out of range.
    #[must_use]
    pub fn concurrent(&self, i: usize, j: usize) -> bool {
        i != j && !self.happened_before(i, j) && !self.happened_before(j, i)
    }

    /// The positions causally preceding `j` (inclusive of `j`).
    #[must_use]
    pub fn causes_of(&self, j: usize) -> Vec<usize> {
        (0..self.len)
            .filter(|&i| self.happened_before(i, j))
            .collect()
    }

    /// Number of causal pairs `(i, j)` with `eᵢ → eⱼ` and `i ≠ j`.
    #[must_use]
    pub fn pair_count(&self) -> usize {
        let mut total = 0usize;
        for j in 0..self.len {
            for w in self.row(j) {
                total += w.count_ones() as usize;
            }
        }
        total - self.len // remove reflexive pairs
    }
}

/// A vector clock: one counter per process, the classical encoding of
/// causal history.
///
/// `VectorClock::of_events` assigns each event its clock; `e → e'` iff
/// `clock(e) ≤ clock(e')` pointwise (for distinct events). Used as an
/// independent cross-check of [`CausalClosure`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VectorClock(Vec<u32>);

impl VectorClock {
    /// The zero clock for a system of `n` processes.
    #[must_use]
    pub fn zero(n: usize) -> Self {
        VectorClock(vec![0; n])
    }

    /// The component for process `p`.
    #[must_use]
    pub fn get(&self, p: ProcessId) -> u32 {
        self.0[p.index()]
    }

    /// Pointwise `self ≤ other`.
    #[must_use]
    pub fn le(&self, other: &VectorClock) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    /// Pointwise maximum, in place.
    pub fn merge(&mut self, other: &VectorClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Increments the component of `p`.
    pub fn tick(&mut self, p: ProcessId) {
        self.0[p.index()] += 1;
    }

    /// Assigns every event of `z` its vector clock, in computation order.
    #[must_use]
    pub fn of_events(z: &Computation) -> Vec<VectorClock> {
        let n = z.system_size();
        let mut proc_clock: Vec<VectorClock> = (0..n).map(|_| VectorClock::zero(n)).collect();
        let mut msg_clock: HashMap<MessageId, VectorClock> = HashMap::new();
        let mut out = Vec::with_capacity(z.len());
        for e in z.iter() {
            let pi = e.process().index();
            if let EventKind::Receive { message, .. } = e.kind() {
                let mc = msg_clock
                    .get(&message)
                    .expect("validated computation: send precedes receive")
                    .clone();
                proc_clock[pi].merge(&mc);
            }
            proc_clock[pi].tick(e.process());
            if let EventKind::Send { message, .. } = e.kind() {
                msg_clock.insert(message, proc_clock[pi].clone());
            }
            out.push(proc_clock[pi].clone());
        }
        out
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ComputationBuilder;
    use proptest::prelude::*;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// p0 sends to p1; p1 receives then sends to p2; p2 receives.
    fn relay() -> Computation {
        let mut b = ComputationBuilder::new(3);
        let m1 = b.send(pid(0), pid(1)).unwrap(); // 0
        b.receive(pid(1), m1).unwrap(); // 1
        let m2 = b.send(pid(1), pid(2)).unwrap(); // 2
        b.receive(pid(2), m2).unwrap(); // 3
        b.finish()
    }

    #[test]
    fn reflexivity() {
        let z = relay();
        let hb = CausalClosure::new(&z);
        for i in 0..z.len() {
            assert!(hb.happened_before(i, i));
        }
    }

    #[test]
    fn chain_through_messages() {
        let z = relay();
        let hb = CausalClosure::new(&z);
        // transitive: the first send happened before the last receive
        assert!(hb.happened_before(0, 3));
        assert!(hb.happened_before(0, 1));
        assert!(hb.happened_before(1, 2));
        assert!(!hb.happened_before(3, 0));
    }

    #[test]
    fn concurrency() {
        let mut b = ComputationBuilder::new(2);
        b.internal(pid(0)).unwrap(); // 0
        b.internal(pid(1)).unwrap(); // 1
        let z = b.finish();
        let hb = CausalClosure::new(&z);
        assert!(hb.concurrent(0, 1));
        assert!(!hb.concurrent(0, 0));
    }

    #[test]
    fn ids_api() {
        let z = relay();
        let hb = CausalClosure::new(&z);
        let ids: Vec<EventId> = z.iter().map(|e| e.id()).collect();
        assert_eq!(hb.happened_before_ids(ids[0], ids[3]), Some(true));
        assert_eq!(hb.happened_before_ids(ids[3], ids[0]), Some(false));
        assert_eq!(hb.happened_before_ids(EventId::new(999), ids[0]), None);
    }

    #[test]
    fn causes_and_pairs() {
        let z = relay();
        let hb = CausalClosure::new(&z);
        assert_eq!(hb.causes_of(3), vec![0, 1, 2, 3]);
        assert_eq!(hb.causes_of(0), vec![0]);
        // pairs: (0,1),(0,2),(0,3),(1,2),(1,3),(2,3)
        assert_eq!(hb.pair_count(), 6);
    }

    #[test]
    fn empty_computation() {
        let z = Computation::empty(2);
        let hb = CausalClosure::new(&z);
        assert!(hb.is_empty());
        assert_eq!(hb.len(), 0);
        assert_eq!(hb.pair_count(), 0);
    }

    #[test]
    fn vector_clock_basics() {
        let z = relay();
        let clocks = VectorClock::of_events(&z);
        assert_eq!(clocks[0].to_string(), "⟨1,0,0⟩");
        assert_eq!(clocks[1].to_string(), "⟨1,1,0⟩");
        assert_eq!(clocks[2].to_string(), "⟨1,2,0⟩");
        assert_eq!(clocks[3].to_string(), "⟨1,2,1⟩");
    }

    /// Generates a random valid computation over `n` processes.
    fn random_computation(n: usize, steps: usize, seed: u64) -> Computation {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = ComputationBuilder::new(n);
        let mut in_flight: Vec<(ProcessId, MessageId)> = Vec::new();
        for _ in 0..steps {
            let choice = rng.random_range(0..3);
            match choice {
                0 => {
                    let from = pid(rng.random_range(0..n));
                    let to = pid(rng.random_range(0..n));
                    let m = b.send(from, to).unwrap();
                    in_flight.push((to, m));
                }
                1 if !in_flight.is_empty() => {
                    let k = rng.random_range(0..in_flight.len());
                    let (to, m) = in_flight.remove(k);
                    b.receive(to, m).unwrap();
                }
                _ => {
                    b.internal(pid(rng.random_range(0..n))).unwrap();
                }
            }
        }
        b.finish()
    }

    proptest! {
        /// The bit-matrix closure and vector clocks agree on →.
        #[test]
        fn prop_closure_matches_vector_clocks(seed in 0u64..200, steps in 1usize..30) {
            let z = random_computation(3, steps, seed);
            let hb = CausalClosure::new(&z);
            let clocks = VectorClock::of_events(&z);
            for i in 0..z.len() {
                for j in 0..z.len() {
                    let by_matrix = hb.happened_before(i, j);
                    let by_clock = if i == j {
                        true
                    } else {
                        // e_i → e_j iff clock(i) ≤ clock(j) and they are
                        // ordered (strictly less or same-process order).
                        clocks[i].le(&clocks[j])
                            && (clocks[i] != clocks[j]
                                || z.events()[i].process() == z.events()[j].process())
                    };
                    prop_assert_eq!(
                        by_matrix, by_clock,
                        "disagree on ({}, {}) in {}", i, j, z
                    );
                }
            }
        }

        /// → is transitive and respects computation order.
        #[test]
        fn prop_transitive_and_order_respecting(seed in 0u64..200, steps in 1usize..25) {
            let z = random_computation(3, steps, seed);
            let hb = CausalClosure::new(&z);
            for i in 0..z.len() {
                for j in 0..z.len() {
                    if hb.happened_before(i, j) && i != j {
                        prop_assert!(i < j, "→ must respect the linear order");
                    }
                    for k in 0..z.len() {
                        if hb.happened_before(i, j) && hb.happened_before(j, k) {
                            prop_assert!(hb.happened_before(i, k));
                        }
                    }
                }
            }
        }
    }
}
