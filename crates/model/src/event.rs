//! Events: sends, receives and internal steps.
//!
//! An event on a process is either a *send*, a *receive* or an *internal*
//! event (paper §2). For a process set `P`, a *send by `P`* is a send by a
//! member of `P` to a process outside `P`; communication among members of
//! `P` is internal to `P` — [`Event::is_send_by`], [`Event::is_receive_by`]
//! and [`Event::is_internal_to`] implement exactly that lifting.

use crate::id::{ActionId, EventId, MessageId, ProcessId};
use crate::procset::ProcessSet;
use std::fmt;

/// The kind of an event, including its communication payload.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EventKind {
    /// Sending of message `message` to process `to`.
    Send {
        /// Destination process.
        to: ProcessId,
        /// The (globally distinguished) message.
        message: MessageId,
    },
    /// Reception of message `message` sent by process `from`.
    Receive {
        /// Originating process.
        from: ProcessId,
        /// The (globally distinguished) message.
        message: MessageId,
    },
    /// An event with no external communication.
    Internal {
        /// Opaque action tag distinguishing internal steps.
        action: ActionId,
    },
}

impl EventKind {
    /// Returns the message carried by a send or receive, if any.
    #[must_use]
    pub fn message(self) -> Option<MessageId> {
        match self {
            EventKind::Send { message, .. } | EventKind::Receive { message, .. } => Some(message),
            EventKind::Internal { .. } => None,
        }
    }
}

/// A single event in a system computation.
///
/// Events are globally distinguished by [`EventId`]; two computations over
/// the same event space contain "the same event" exactly when the ids are
/// equal. `Event` is a small `Copy` value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Event {
    id: EventId,
    process: ProcessId,
    kind: EventKind,
}

impl Event {
    /// Creates an event. Builders and enumerators are the intended callers;
    /// they are responsible for keeping ids unique.
    #[must_use]
    pub fn new(id: EventId, process: ProcessId, kind: EventKind) -> Self {
        Event { id, process, kind }
    }

    /// The globally unique id of this event.
    #[must_use]
    pub fn id(self) -> EventId {
        self.id
    }

    /// The process on which this event occurs.
    #[must_use]
    pub fn process(self) -> ProcessId {
        self.process
    }

    /// The kind (send / receive / internal) of this event.
    #[must_use]
    pub fn kind(self) -> EventKind {
        self.kind
    }

    /// Returns `true` if the event is a send (to any destination).
    #[must_use]
    pub fn is_send(self) -> bool {
        matches!(self.kind, EventKind::Send { .. })
    }

    /// Returns `true` if the event is a receive (from any source).
    #[must_use]
    pub fn is_receive(self) -> bool {
        matches!(self.kind, EventKind::Receive { .. })
    }

    /// Returns `true` if the event is internal to its own process.
    #[must_use]
    pub fn is_internal(self) -> bool {
        matches!(self.kind, EventKind::Internal { .. })
    }

    /// Returns `true` if the event is *on* `p` (paper: "e is on P").
    #[must_use]
    pub fn is_on(self, p: ProcessId) -> bool {
        self.process == p
    }

    /// Returns `true` if the event is on some process in `set`.
    #[must_use]
    pub fn is_on_set(self, set: ProcessSet) -> bool {
        set.contains(self.process)
    }

    /// Returns `true` if this is a *send by the process set* `p`: a send by
    /// a member of `p` to a process **outside** `p` (paper §2).
    #[must_use]
    pub fn is_send_by(self, p: ProcessSet) -> bool {
        match self.kind {
            EventKind::Send { to, .. } => p.contains(self.process) && !p.contains(to),
            _ => false,
        }
    }

    /// Returns `true` if this is a *receive by the process set* `p`:
    /// receipt by a member of `p` of a message sent from outside `p`.
    #[must_use]
    pub fn is_receive_by(self, p: ProcessSet) -> bool {
        match self.kind {
            EventKind::Receive { from, .. } => p.contains(self.process) && !p.contains(from),
            _ => false,
        }
    }

    /// Returns `true` if the event is internal *to the set* `p`: an
    /// internal event of a member, or a communication both of whose
    /// endpoints lie in `p` (paper §2: "communication among processes in P
    /// are internal events of P").
    #[must_use]
    pub fn is_internal_to(self, p: ProcessSet) -> bool {
        if !p.contains(self.process) {
            return false;
        }
        match self.kind {
            EventKind::Internal { .. } => true,
            EventKind::Send { to, .. } => p.contains(to),
            EventKind::Receive { from, .. } => p.contains(from),
        }
    }

    /// The message sent or received, if this is a communication event.
    #[must_use]
    pub fn message(self) -> Option<MessageId> {
        self.kind.message()
    }

    /// The communication peer: destination of a send or source of a
    /// receive.
    #[must_use]
    pub fn peer(self) -> Option<ProcessId> {
        match self.kind {
            EventKind::Send { to, .. } => Some(to),
            EventKind::Receive { from, .. } => Some(from),
            EventKind::Internal { .. } => None,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            EventKind::Send { to, message } => {
                write!(f, "{}:{}!{}→{}", self.id, self.process, message, to)
            }
            EventKind::Receive { from, message } => {
                write!(f, "{}:{}?{}←{}", self.id, self.process, message, from)
            }
            EventKind::Internal { action } => {
                write!(f, "{}:{}·{}", self.id, self.process, action)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(id: usize, from: usize, to: usize, m: usize) -> Event {
        Event::new(
            EventId::new(id),
            ProcessId::new(from),
            EventKind::Send {
                to: ProcessId::new(to),
                message: MessageId::new(m),
            },
        )
    }

    fn recv(id: usize, at: usize, from: usize, m: usize) -> Event {
        Event::new(
            EventId::new(id),
            ProcessId::new(at),
            EventKind::Receive {
                from: ProcessId::new(from),
                message: MessageId::new(m),
            },
        )
    }

    fn internal(id: usize, at: usize) -> Event {
        Event::new(
            EventId::new(id),
            ProcessId::new(at),
            EventKind::Internal {
                action: ActionId::new(0),
            },
        )
    }

    #[test]
    fn kind_predicates() {
        assert!(send(0, 0, 1, 0).is_send());
        assert!(recv(1, 1, 0, 0).is_receive());
        assert!(internal(2, 0).is_internal());
        assert!(!send(0, 0, 1, 0).is_receive());
    }

    #[test]
    fn on_process_and_set() {
        let e = send(0, 2, 3, 0);
        assert!(e.is_on(ProcessId::new(2)));
        assert!(!e.is_on(ProcessId::new(3)));
        assert!(e.is_on_set(ProcessSet::from_indices([1, 2])));
        assert!(!e.is_on_set(ProcessSet::from_indices([3])));
    }

    #[test]
    fn set_lifted_send_receive() {
        let p = ProcessSet::from_indices([0, 1]);
        // send from inside P to outside P: a "send by P"
        assert!(send(0, 0, 2, 0).is_send_by(p));
        // send inside P: internal to P
        assert!(!send(0, 0, 1, 0).is_send_by(p));
        assert!(send(0, 0, 1, 0).is_internal_to(p));
        // receive by P from outside
        assert!(recv(1, 1, 2, 0).is_receive_by(p));
        assert!(!recv(1, 1, 0, 0).is_receive_by(p));
        assert!(recv(1, 1, 0, 0).is_internal_to(p));
        // events not on P are nothing to P
        assert!(!send(0, 2, 0, 0).is_send_by(p));
        assert!(!send(0, 2, 0, 0).is_internal_to(p));
    }

    #[test]
    fn message_and_peer() {
        assert_eq!(send(0, 0, 1, 7).message(), Some(MessageId::new(7)));
        assert_eq!(internal(0, 0).message(), None);
        assert_eq!(send(0, 0, 1, 7).peer(), Some(ProcessId::new(1)));
        assert_eq!(recv(0, 1, 0, 7).peer(), Some(ProcessId::new(0)));
        assert_eq!(internal(0, 0).peer(), None);
    }

    #[test]
    fn display_is_nonempty() {
        for e in [send(0, 0, 1, 0), recv(1, 1, 0, 0), internal(2, 1)] {
            assert!(!e.to_string().is_empty());
        }
    }
}
