//! Fluent construction of computations and shared event spaces.
//!
//! [`ComputationBuilder`] maintains validity incrementally, so
//! [`ComputationBuilder::finish`] is infallible. [`ScenarioPool`] supports
//! the paper's worked examples (e.g. Figure 3-1), where *several*
//! computations are built over one shared event space so that isomorphism
//! between them is meaningful.

use crate::computation::Computation;
use crate::error::ModelError;
use crate::event::{Event, EventKind};
use crate::id::{ActionId, EventId, MessageId, ProcessId};
use crate::symmetry::Permutation;
use std::collections::HashMap;

/// Incremental builder for a single [`Computation`].
///
/// Every step validates eagerly, so the final [`finish`](Self::finish)
/// cannot fail.
///
/// # Example
///
/// ```
/// use hpl_model::{ComputationBuilder, ProcessId};
/// # fn main() -> Result<(), hpl_model::ModelError> {
/// let (p, q) = (ProcessId::new(0), ProcessId::new(1));
/// let mut b = ComputationBuilder::new(2);
/// let m = b.send(p, q)?;
/// b.receive(q, m)?;
/// b.internal(p)?;
/// let z = b.finish();
/// assert_eq!(z.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ComputationBuilder {
    system_size: usize,
    events: Vec<Event>,
    next_event: usize,
    next_message: usize,
    // message -> (sender, addressee, already received?)
    messages: HashMap<MessageId, (ProcessId, ProcessId, bool)>,
}

impl ComputationBuilder {
    /// Creates a builder for a system of `system_size` processes.
    #[must_use]
    pub fn new(system_size: usize) -> Self {
        ComputationBuilder {
            system_size,
            events: Vec::new(),
            next_event: 0,
            next_message: 0,
            messages: HashMap::new(),
        }
    }

    /// Creates a builder whose event/message ids start at the given
    /// offsets, so that independently built computations use disjoint id
    /// ranges when that is desired.
    #[must_use]
    pub fn with_id_offsets(system_size: usize, first_event: usize, first_message: usize) -> Self {
        ComputationBuilder {
            system_size,
            events: Vec::new(),
            next_event: first_event,
            next_message: first_message,
            messages: HashMap::new(),
        }
    }

    fn check_process(&self, p: ProcessId) -> Result<(), ModelError> {
        if p.index() >= self.system_size {
            return Err(ModelError::ProcessOutOfRange {
                process: p,
                system_size: self.system_size,
            });
        }
        Ok(())
    }

    fn fresh_event(&mut self) -> EventId {
        let id = EventId::new(self.next_event);
        self.next_event += 1;
        id
    }

    /// Appends a send event from `from` to `to`, returning the fresh
    /// message id.
    ///
    /// # Errors
    ///
    /// Returns an error if either process is out of range.
    pub fn send(&mut self, from: ProcessId, to: ProcessId) -> Result<MessageId, ModelError> {
        self.check_process(from)?;
        self.check_process(to)?;
        let message = MessageId::new(self.next_message);
        self.next_message += 1;
        let id = self.fresh_event();
        self.messages.insert(message, (from, to, false));
        self.events
            .push(Event::new(id, from, EventKind::Send { to, message }));
        Ok(message)
    }

    /// Appends a receive of `message` at process `at`.
    ///
    /// # Errors
    ///
    /// Returns an error if the message was never sent, was sent to a
    /// different process, or was already received.
    pub fn receive(&mut self, at: ProcessId, message: MessageId) -> Result<EventId, ModelError> {
        self.check_process(at)?;
        let Some(&(from, addressee, received)) = self.messages.get(&message) else {
            return Err(ModelError::ReceiveBeforeSend {
                receive: EventId::new(self.next_event),
                message,
            });
        };
        if addressee != at {
            return Err(ModelError::MisdeliveredMessage {
                message,
                addressed_to: addressee,
                received_by: at,
            });
        }
        if received {
            return Err(ModelError::DuplicateReceive { message });
        }
        self.messages.insert(message, (from, addressee, true));
        let id = self.fresh_event();
        self.events
            .push(Event::new(id, at, EventKind::Receive { from, message }));
        Ok(id)
    }

    /// Appends an internal event with the default action tag.
    ///
    /// # Errors
    ///
    /// Returns an error if the process is out of range.
    pub fn internal(&mut self, p: ProcessId) -> Result<EventId, ModelError> {
        self.internal_with(p, ActionId::new(0))
    }

    /// Appends an internal event with an explicit action tag.
    ///
    /// # Errors
    ///
    /// Returns an error if the process is out of range.
    pub fn internal_with(&mut self, p: ProcessId, action: ActionId) -> Result<EventId, ModelError> {
        self.check_process(p)?;
        let id = self.fresh_event();
        self.events
            .push(Event::new(id, p, EventKind::Internal { action }));
        Ok(id)
    }

    /// Number of events appended so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no events have been appended.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finishes the build. Infallible: validity was maintained per step.
    #[must_use]
    pub fn finish(self) -> Computation {
        Computation::from_events(self.system_size, self.events)
            .expect("builder maintains validity invariant")
    }
}

/// A shared event space from which *multiple* computations are composed.
///
/// The paper's isomorphism diagrams (e.g. Figure 3-1) relate several
/// computations built from the same distinguished events. A pool first
/// *declares* events (fixing their identity), then [`compose`]s any number
/// of computations as orderings of declared events; each composition is
/// validated.
///
/// [`compose`]: ScenarioPool::compose
///
/// # Example
///
/// ```
/// use hpl_model::{ProcessId, ScenarioPool};
/// # fn main() -> Result<(), hpl_model::ModelError> {
/// let (p, q) = (ProcessId::new(0), ProcessId::new(1));
/// let mut pool = ScenarioPool::new(2);
/// let a = pool.internal(p);
/// let b = pool.internal(q);
///
/// // Two interleavings of the same two independent events:
/// let x = pool.compose([a, b])?;
/// let y = pool.compose([b, a])?;
/// assert!(x.is_permutation_of(&y));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ScenarioPool {
    system_size: usize,
    events: Vec<Event>,
    next_message: usize,
}

impl ScenarioPool {
    /// Creates an empty pool for a system of `system_size` processes.
    #[must_use]
    pub fn new(system_size: usize) -> Self {
        ScenarioPool {
            system_size,
            events: Vec::new(),
            next_message: 0,
        }
    }

    /// Number of processes in the system.
    #[must_use]
    pub fn system_size(&self) -> usize {
        self.system_size
    }

    /// Declares a send event; returns its id and the fresh message id.
    pub fn send(&mut self, from: ProcessId, to: ProcessId) -> (EventId, MessageId) {
        let message = MessageId::new(self.next_message);
        self.next_message += 1;
        let id = EventId::new(self.events.len());
        self.events
            .push(Event::new(id, from, EventKind::Send { to, message }));
        (id, message)
    }

    /// Declares the receive of `message` at `at` from `from`.
    pub fn receive(&mut self, at: ProcessId, from: ProcessId, message: MessageId) -> EventId {
        let id = EventId::new(self.events.len());
        self.events
            .push(Event::new(id, at, EventKind::Receive { from, message }));
        id
    }

    /// Declares an internal event with the default action.
    pub fn internal(&mut self, p: ProcessId) -> EventId {
        self.internal_with(p, ActionId::new(0))
    }

    /// Declares an internal event with an explicit action tag.
    pub fn internal_with(&mut self, p: ProcessId, action: ActionId) -> EventId {
        let id = EventId::new(self.events.len());
        self.events
            .push(Event::new(id, p, EventKind::Internal { action }));
        id
    }

    /// Number of declared events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no event has been declared.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All declared events, in declaration order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Looks up a declared event.
    ///
    /// # Panics
    ///
    /// Panics if the id was not declared by this pool.
    #[must_use]
    pub fn event(&self, id: EventId) -> Event {
        self.events[id.index()]
    }

    /// Composes a computation as an ordering of declared events.
    ///
    /// # Errors
    ///
    /// Returns an error if the ordering violates system-computation
    /// validity (receive before send, duplicates, …).
    pub fn compose<I: IntoIterator<Item = EventId>>(
        &self,
        order: I,
    ) -> Result<Computation, ModelError> {
        let events: Vec<Event> = order.into_iter().map(|id| self.event(id)).collect();
        Computation::from_events(self.system_size, events)
    }

    /// Declares a relabeled twin of every event declared so far: each
    /// existing event is re-declared on its permuted process (send
    /// destinations and receive sources mapped, messages given fresh
    /// ids), and the mapping `old event id → twin event id` is returned.
    ///
    /// This is the builder hook behind worked symmetry examples: compose
    /// a computation from original events and its relabeling `π·x` from
    /// the twins, and the two live in one shared event space where
    /// isomorphism between them is meaningful.
    ///
    /// # Panics
    ///
    /// Panics if a receive's message was declared by a different pool
    /// (cannot happen for events declared through this pool's methods).
    ///
    /// # Example
    ///
    /// ```
    /// use hpl_model::{Permutation, ProcessId, ProcessSet, ScenarioPool};
    /// # fn main() -> Result<(), hpl_model::ModelError> {
    /// let mut pool = ScenarioPool::new(2);
    /// let a = pool.internal(ProcessId::new(0));
    /// let swap = Permutation::transposition(2, 0, 1);
    /// let twins = pool.permuted_twins(&swap);
    /// let x = pool.compose([a])?;
    /// let y = pool.compose([twins[a.index()]])?;
    /// // y is x with p0 and p1 swapped:
    /// assert_eq!(y.events()[0].process(), ProcessId::new(1));
    /// # Ok(())
    /// # }
    /// ```
    pub fn permuted_twins(&mut self, pi: &Permutation) -> Vec<EventId> {
        let originals: Vec<Event> = self.events.clone();
        let mut message_map: HashMap<MessageId, MessageId> = HashMap::new();
        let mut twins = Vec::with_capacity(originals.len());
        for e in originals {
            let twin = match e.kind() {
                EventKind::Send { to, message } => {
                    let (id, m) = self.send(pi.apply(e.process()), pi.apply(to));
                    message_map.insert(message, m);
                    id
                }
                EventKind::Receive { from, message } => {
                    let m = *message_map
                        .get(&message)
                        .expect("receive's message declared by this pool");
                    self.receive(pi.apply(e.process()), pi.apply(from), m)
                }
                EventKind::Internal { action } => self.internal_with(pi.apply(e.process()), action),
            };
            twins.push(twin);
        }
        twins
    }

    /// Composes many computations at once — the sharding hook used when a
    /// universe is assembled from orderings produced by parallel workers.
    ///
    /// All-or-nothing: the first invalid ordering aborts the batch.
    ///
    /// # Errors
    ///
    /// Returns the first composition error encountered, if any.
    pub fn compose_batch<O, I>(&self, orderings: O) -> Result<Vec<Computation>, ModelError>
    where
        O: IntoIterator<Item = I>,
        I: IntoIterator<Item = EventId>,
    {
        orderings.into_iter().map(|o| self.compose(o)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procset::ProcessSet;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn builder_happy_path() {
        let mut b = ComputationBuilder::new(3);
        let m1 = b.send(pid(0), pid(1)).unwrap();
        let m2 = b.send(pid(1), pid(2)).unwrap();
        b.receive(pid(1), m1).unwrap();
        b.receive(pid(2), m2).unwrap();
        b.internal_with(pid(2), ActionId::new(9)).unwrap();
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        let z = b.finish();
        assert_eq!(z.sends(), 2);
        assert_eq!(z.receives(), 2);
    }

    #[test]
    fn builder_rejects_bad_steps() {
        let mut b = ComputationBuilder::new(2);
        assert!(b.send(pid(0), pid(5)).is_err());
        assert!(b.internal(pid(2)).is_err());
        assert!(b.receive(pid(1), MessageId::new(42)).is_err());
        let m = b.send(pid(0), pid(1)).unwrap();
        assert!(b.receive(pid(0), m).is_err()); // misdelivery
        b.receive(pid(1), m).unwrap();
        assert!(b.receive(pid(1), m).is_err()); // duplicate
    }

    #[test]
    fn builder_id_offsets() {
        let mut b = ComputationBuilder::with_id_offsets(2, 100, 50);
        let m = b.send(pid(0), pid(1)).unwrap();
        assert_eq!(m, MessageId::new(50));
        let z = b.finish();
        assert_eq!(z.events()[0].id(), EventId::new(100));
    }

    #[test]
    fn pool_composes_interleavings() {
        let mut pool = ScenarioPool::new(2);
        let (s, m) = pool.send(pid(0), pid(1));
        let r = pool.receive(pid(1), pid(0), m);
        let i = pool.internal(pid(0));

        let x = pool.compose([s, r, i]).unwrap();
        let y = pool.compose([s, i, r]).unwrap();
        assert!(x.is_permutation_of(&y));
        assert!(x.agrees_on(&y, ProcessSet::full(2))); // x [D] y

        // receive before send is invalid
        assert!(pool.compose([r, s]).is_err());
        // partial compositions are fine
        assert!(pool.compose([s]).is_ok());
        assert!(pool.compose([i]).is_ok());
    }

    #[test]
    fn pool_compose_batch() {
        let mut pool = ScenarioPool::new(2);
        let (s, m) = pool.send(pid(0), pid(1));
        let r = pool.receive(pid(1), pid(0), m);
        let i = pool.internal(pid(0));
        assert_eq!(pool.len(), 3);
        assert!(!pool.is_empty());
        assert_eq!(pool.events().len(), 3);

        let batch = pool
            .compose_batch([vec![s, r, i], vec![s, i, r], vec![i]])
            .unwrap();
        assert_eq!(batch.len(), 3);
        assert!(batch[0].is_permutation_of(&batch[1]));
        // the first invalid ordering aborts the whole batch
        assert!(pool.compose_batch([vec![s], vec![r, s]]).is_err());
    }

    #[test]
    fn pool_event_lookup() {
        let mut pool = ScenarioPool::new(1);
        let a = pool.internal_with(pid(0), ActionId::new(3));
        let e = pool.event(a);
        assert_eq!(e.id(), a);
        assert!(e.is_internal());
    }

    #[test]
    fn shared_events_make_isomorphism_meaningful() {
        // Figure 3-1 style: x and y share p's event but differ on q.
        let (p, q) = (pid(0), pid(1));
        let mut pool = ScenarioPool::new(2);
        let ep = pool.internal(p);
        let eq1 = pool.internal_with(q, ActionId::new(1));
        let eq2 = pool.internal_with(q, ActionId::new(2));

        let x = pool.compose([ep, eq1]).unwrap();
        let y = pool.compose([ep, eq2]).unwrap();
        assert!(x.agrees_on(&y, ProcessSet::singleton(p)));
        assert!(!x.agrees_on(&y, ProcessSet::singleton(q)));
    }
}
