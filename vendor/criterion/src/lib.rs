//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API surface the `hpl-bench` suite uses — `Criterion`,
//! benchmark groups with `sample_size`/`throughput`, `BenchmarkId`, and
//! the `criterion_group!`/`criterion_main!` macros. Instead of rigorous
//! statistics it runs each benchmark in a short calibrated loop and
//! prints the mean wall-clock time per iteration, which is enough to
//! compare hot paths across commits in this offline container.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard black box, for parity with criterion.
pub use std::hint::black_box;

/// Iteration driver handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    measured: Option<Duration>,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, running enough iterations for a stable mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: grow the batch until it takes ≥ ~5ms or hits a cap.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || batch >= 1 << 20 {
                self.measured = Some(elapsed);
                self.iterations = batch;
                return;
            }
            batch *= 2;
        }
    }

    fn report(&self, name: &str) {
        match self.measured {
            Some(total) if self.iterations > 0 => {
                let per_iter = total.as_nanos() / u128::from(self.iterations);
                println!("bench: {name:<50} {per_iter:>12} ns/iter");
            }
            _ => println!("bench: {name:<50} (no measurement)"),
        }
    }
}

/// Identifies one parameterized benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of the parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation for a benchmark (recorded, displayed only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark harness.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the statistical sample size (accepted for API parity).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time budget (accepted for API parity).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        routine(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runner, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
