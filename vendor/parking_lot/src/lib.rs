//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's poison-free API: `lock()`
//! returns the guard directly. A poisoned std mutex (a panic while the
//! lock was held) is recovered rather than propagated, matching
//! parking_lot's behaviour of not tracking poisoning at all.

#![forbid(unsafe_code)]

/// A mutual-exclusion primitive with a non-poisoning `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// The guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 800);
    }
}
