//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro over
//! `name(arg in strategy, ...)` test functions, range strategies
//! (`0u64..200`, `0u128..`, `1usize..=8`), [`collection::vec`],
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from real proptest: no shrinking (a failing case panics
//! with its case index and the generating seed, which is enough to
//! reproduce deterministically), and the per-test RNG is seeded from the
//! test's module path so runs are stable across invocations.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration: how many random cases each property runs.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the O(n³)-ish
        // properties in this workspace fast while still probing widely.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values for one property argument.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::RngExt::random_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::RngExt::random_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::RngExt::random_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<u128> {
    type Value = u128;
    fn sample(&self, rng: &mut StdRng) -> u128 {
        rand::RngExt::random_range(rng, self.clone())
    }
}

impl Strategy for std::ops::RangeFrom<u128> {
    type Value = u128;
    fn sample(&self, rng: &mut StdRng) -> u128 {
        rand::RngExt::random_range(rng, self.clone())
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rand::RngExt::random_range(rng, self.clone())
    }
}

/// A strategy producing a fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// A strategy for `Vec<T>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Produces vectors whose elements come from `element` and whose
    /// length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The error type a property body produces on `prop_assert!` failure.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Builds the deterministic per-test RNG. Public for macro use.
#[doc(hidden)]
#[must_use]
pub fn rng_for_test(test_path: &str) -> StdRng {
    // FNV-1a over the fully qualified test name: stable across runs and
    // independent per property.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_path.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

/// Everything a property test needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                    Ok(())
                })();
                if let Err(e) = __outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}

/// Like `assert!`, but reported through the property runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Like `assert_eq!`, but reported through the property runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), l, r
            )));
        }
    }};
}

/// Like `assert_ne!`, but reported through the property runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_sample_in_bounds(x in 0u64..10, y in 1usize..=4, z in 0u128..) {
            prop_assert!(x < 10);
            prop_assert!((1..=4).contains(&y));
            let _ = z;
        }

        #[test]
        fn vec_strategy_respects_size(xs in collection::vec(0usize..300, 0..50)) {
            prop_assert!(xs.len() < 50);
            prop_assert!(xs.iter().all(|&v| v < 300));
        }
    }

    proptest! {
        #[test]
        fn default_config_applies(x in 0i32..100) {
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
            prop_assume!(x > 0);
            prop_assert!(x > 0);
        }
    }
}
