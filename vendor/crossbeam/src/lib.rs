//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` — the only module this workspace uses —
//! on top of `std::sync::mpsc`, with crossbeam's error vocabulary
//! (`RecvTimeoutError::{Timeout, Disconnected}`).

#![forbid(unsafe_code)]

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::time::Duration;

    /// The sending half of an unbounded channel. Cloneable.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: std::sync::mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: std::sync::mpsc::Receiver<T>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel drained and
    /// every sender disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel drained and every sender disconnected.
        Disconnected,
    }

    /// Creates an unbounded FIFO channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    impl<T> Sender<T> {
        /// Sends `value`; fails only if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Blocks for at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                std::sync::mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                std::sync::mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Returns a message if one is ready, without blocking.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.try_recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn cloned_senders_fan_in() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx.send(1).unwrap());
        std::thread::spawn(move || tx2.send(2).unwrap());
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, [1, 2]);
    }

    #[test]
    fn timeout_and_disconnect_are_distinguished() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
