//! Minimal offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! provides exactly the surface the workspace uses: a deterministic
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`] and the
//! [`RngExt::random_range`] sampler over integer and float ranges.
//!
//! The generator is SplitMix64 — statistically solid for test workloads
//! and, crucially, fully deterministic for a given seed, which the
//! simulator's reproducibility tests rely on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeFrom, RangeInclusive};

/// A source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u128`.
    fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Identical seeds yield
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// A range of values a generator can sample from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = rng.next_u128() % width;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let offset = rng.next_u128() % width;
                (lo as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeFrom<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                // Rejection sampling: for small `start` this accepts almost
                // always; the workspace only uses `0..`-style ranges.
                loop {
                    let candidate = rng.next_u128() as $t;
                    if candidate >= self.start {
                        return candidate;
                    }
                }
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<u128> for Range<u128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let width = self.end - self.start;
        self.start + rng.next_u128() % width
    }
}

impl SampleRange<u128> for RangeFrom<u128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        loop {
            let candidate = rng.next_u128();
            if candidate >= self.start {
                return candidate;
            }
        }
    }
}

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                // 53 (resp. 24) uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_sample_range!(f64, f32);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniformly samples one value from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_range(0.0..1.0f64) < p
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.random_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.random_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w: u8 = rng.random_range(1u8..=3);
            assert!((1..=3).contains(&w));
            let f: f64 = rng.random_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&f));
            let g: usize = rng.random_range(0..3);
            assert!(g < 3);
        }
    }

    #[test]
    fn range_from_supports_full_width() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_large = false;
        for _ in 0..64 {
            let v: u128 = rng.random_range(0u128..);
            seen_large |= v > u128::from(u64::MAX);
        }
        assert!(seen_large, "u128 samples must use the full width");
    }
}
