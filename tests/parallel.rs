//! Cross-thread determinism suite for the sharded enumeration engine.
//!
//! For every protocol shipped with the workspace (and a family of seeded
//! random protocols), enumeration with 1, 2 and 8 shards must produce a
//! universe **byte-identical** to the sequential reference path: same
//! computations in the same `CompId` order after the deterministic
//! merge, same event-id bindings, same payload table.

use hpl_core::{
    enumerate, enumerate_sharded, EnumerationLimits, LocalStep, LocalView, ProtoAction, Protocol,
    ProtocolUniverse, ShardConfig,
};
use hpl_model::{ActionId, ProcessId};
use hpl_protocols::failure::CrashableWorker;
use hpl_protocols::gossip::PushGossip;
use hpl_protocols::token_bus::TokenBus;
use hpl_protocols::tracking::Toggler;
use hpl_protocols::two_generals::TwoGenerals;

/// Byte-identity: sizes, per-id computations, event bindings, payloads.
fn assert_identical(sharded: &ProtocolUniverse, sequential: &ProtocolUniverse, label: &str) {
    assert_eq!(
        sharded.universe().len(),
        sequential.universe().len(),
        "{label}: universe size"
    );
    for (id, c) in sequential.universe().iter() {
        assert_eq!(sharded.universe().get(id), c, "{label}: computation {id}");
        for e in c.iter() {
            assert_eq!(
                sharded.universe().event(e.id()),
                sequential.universe().event(e.id()),
                "{label}: binding of {:?}",
                e.id()
            );
        }
    }
    assert_eq!(
        sharded.payload_table(),
        sequential.payload_table(),
        "{label}: payload table"
    );
}

fn check_protocol<P: Protocol + Sync>(p: &P, depth: usize, label: &str) {
    let limits = EnumerationLimits {
        max_events: depth,
        max_computations: 1_000_000,
    };
    let seq = enumerate(p, limits).expect("within budget");
    assert!(seq.universe().is_prefix_closed(), "{label}: prefix closure");
    for shards in [1usize, 2, 8] {
        let out =
            enumerate_sharded(p, limits, &ShardConfig::with_shards(shards)).expect("within budget");
        assert_identical(&out.universe, &seq, &format!("{label} @ {shards} shard(s)"));
        assert_eq!(
            out.stats.unique,
            seq.universe().len(),
            "{label}: stats.unique"
        );
    }
}

#[test]
fn token_bus_is_shard_deterministic() {
    check_protocol(&TokenBus::new(3), 6, "token_bus(3)");
    check_protocol(&TokenBus::new(4), 5, "token_bus(4)");
}

#[test]
fn two_generals_is_shard_deterministic() {
    check_protocol(&TwoGenerals::new(3), 6, "two_generals");
    check_protocol(
        &TwoGenerals::with_deliberation(2, 2),
        5,
        "two_generals+deliberation",
    );
}

#[test]
fn crashable_worker_is_shard_deterministic() {
    check_protocol(&CrashableWorker { max_reports: 2 }, 5, "crashable_worker");
}

#[test]
fn push_gossip_is_shard_deterministic() {
    check_protocol(&PushGossip { n: 3 }, 4, "push_gossip(3)");
}

#[test]
fn toggler_is_shard_deterministic() {
    check_protocol(&Toggler { max_toggles: 2 }, 5, "toggler");
}

/// A pure pseudo-random protocol: the enabled steps are a deterministic
/// mix of the seed and the local view, exercising irregular branching
/// (0–3 actions per node, sends to varying peers, payload variety) that
/// the hand-written protocols never produce.
struct SeededChaos {
    n: usize,
    seed: u64,
}

impl SeededChaos {
    fn mix(&self, p: ProcessId, view: &LocalView) -> u64 {
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        h = h
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(p.index() as u64);
        for s in view.steps() {
            let tag = match *s {
                LocalStep::Sent { to, payload } => {
                    (1u64 << 32) | ((to.index() as u64) << 16) | u64::from(payload)
                }
                LocalStep::Received { from, payload } => {
                    (2u64 << 32) | ((from.index() as u64) << 16) | u64::from(payload)
                }
                LocalStep::Did { action } => (3u64 << 32) | u64::from(action.tag()),
            };
            h = (h ^ tag).wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

impl Protocol for SeededChaos {
    fn system_size(&self) -> usize {
        self.n
    }

    fn actions(&self, p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
        if view.len() >= 4 {
            return vec![];
        }
        let h = self.mix(p, view);
        let mut out = Vec::new();
        if h & 1 != 0 {
            out.push(ProtoAction::Send {
                to: ProcessId::new(((h >> 8) as usize) % self.n),
                payload: ((h >> 16) & 0xf) as u32,
            });
        }
        if h & 2 != 0 {
            out.push(ProtoAction::Internal {
                action: ActionId::new(((h >> 24) & 0xff) as u32),
            });
        }
        out
    }

    fn accepts(&self, p: ProcessId, view: &LocalView, from: ProcessId, payload: u32) -> bool {
        // an irregular but pure gate
        (self.mix(p, view) ^ (from.index() as u64) ^ u64::from(payload)) & 4 != 0
    }
}

#[test]
fn seeded_random_protocols_are_shard_deterministic() {
    for seed in [11u64, 5417, 990_001] {
        check_protocol(
            &SeededChaos { n: 3, seed },
            6,
            &format!("chaos(seed={seed})"),
        );
    }
}

#[test]
fn dedupe_and_trivial_quotient_partition_identically() {
    // dedupe keys on event-id projection signatures; the quotient keys
    // on symmetry.rs structural signatures. Under the trivial group the
    // two definitions of the [D]-partition must never drift — certified
    // here on the irregular payload-rich chaos protocols, not just the
    // hand-written ones.
    for seed in [7u64, 23, 4242] {
        let p = SeededChaos { n: 3, seed };
        let limits = EnumerationLimits {
            max_events: 6,
            max_computations: 1_000_000,
        };
        let ded = enumerate_sharded(&p, limits, &ShardConfig::with_shards(2).dedupe())
            .expect("within budget");
        let quo = enumerate_sharded(&p, limits, &ShardConfig::with_shards(2).quotient())
            .expect("within budget");
        assert_identical(
            &quo.universe,
            &ded.universe,
            &format!("trivial-quotient vs dedupe chaos(seed={seed})"),
        );
        let orbits = quo.orbits.expect("quotient attaches orbits");
        assert_eq!(orbits.group_order(), 1);
        assert_eq!(orbits.full_size() as usize, ded.stats.explored);
    }
}

#[test]
fn dedupe_is_shard_deterministic_too() {
    // with dedupe on, the canonical universe must still be independent of
    // the shard count (the merge is what defines the order)
    for seed in [7u64, 23, 4242] {
        let p = SeededChaos { n: 3, seed };
        let limits = EnumerationLimits {
            max_events: 6,
            max_computations: 1_000_000,
        };
        let reference = enumerate_sharded(&p, limits, &ShardConfig::with_shards(1).dedupe())
            .expect("within budget");
        for shards in [2usize, 8] {
            let out = enumerate_sharded(&p, limits, &ShardConfig::with_shards(shards).dedupe())
                .expect("within budget");
            assert_identical(
                &out.universe,
                &reference.universe,
                &format!("dedupe chaos(seed={seed}) @ {shards} shards"),
            );
            assert_eq!(out.stats.explored, reference.stats.explored);
            assert_eq!(out.stats.unique, reference.stats.unique);
        }
    }
}
