//! Cross-thread determinism suite for the sharded enumeration engine.
//!
//! For every protocol shipped with the workspace (and a family of seeded
//! random protocols), enumeration with 1, 2 and 8 shards must produce a
//! universe **byte-identical** to the sequential reference path: same
//! computations in the same `CompId` order after the deterministic
//! merge, same event-id bindings, same payload table.

use hpl_core::{
    enumerate, enumerate_sharded, EnumerationLimits, LocalStep, LocalView, ProtoAction, Protocol,
    ProtocolUniverse, ShardConfig,
};
use hpl_model::{ActionId, ProcessId};
use hpl_protocols::failure::CrashableWorker;
use hpl_protocols::gossip::PushGossip;
use hpl_protocols::token_bus::TokenBus;
use hpl_protocols::tracking::Toggler;
use hpl_protocols::two_generals::TwoGenerals;

/// Byte-identity: sizes, per-id computations, event bindings, payloads.
fn assert_identical(sharded: &ProtocolUniverse, sequential: &ProtocolUniverse, label: &str) {
    assert_eq!(
        sharded.universe().len(),
        sequential.universe().len(),
        "{label}: universe size"
    );
    for (id, c) in sequential.universe().iter() {
        assert_eq!(sharded.universe().get(id), c, "{label}: computation {id}");
        for e in c.iter() {
            assert_eq!(
                sharded.universe().event(e.id()),
                sequential.universe().event(e.id()),
                "{label}: binding of {:?}",
                e.id()
            );
        }
    }
    assert_eq!(
        sharded.payload_table(),
        sequential.payload_table(),
        "{label}: payload table"
    );
}

fn check_protocol<P: Protocol + Sync>(p: &P, depth: usize, label: &str) {
    let limits = EnumerationLimits {
        max_events: depth,
        max_computations: 1_000_000,
    };
    let seq = enumerate(p, limits).expect("within budget");
    assert!(seq.universe().is_prefix_closed(), "{label}: prefix closure");
    for shards in [1usize, 2, 8] {
        let out =
            enumerate_sharded(p, limits, &ShardConfig::with_shards(shards)).expect("within budget");
        assert_identical(&out.universe, &seq, &format!("{label} @ {shards} shard(s)"));
        assert_eq!(
            out.stats.unique,
            seq.universe().len(),
            "{label}: stats.unique"
        );
    }
}

#[test]
fn token_bus_is_shard_deterministic() {
    check_protocol(&TokenBus::new(3), 6, "token_bus(3)");
    check_protocol(&TokenBus::new(4), 5, "token_bus(4)");
}

#[test]
fn two_generals_is_shard_deterministic() {
    check_protocol(&TwoGenerals::new(3), 6, "two_generals");
    check_protocol(
        &TwoGenerals::with_deliberation(2, 2),
        5,
        "two_generals+deliberation",
    );
}

#[test]
fn crashable_worker_is_shard_deterministic() {
    check_protocol(&CrashableWorker { max_reports: 2 }, 5, "crashable_worker");
}

#[test]
fn push_gossip_is_shard_deterministic() {
    check_protocol(&PushGossip { n: 3 }, 4, "push_gossip(3)");
}

#[test]
fn toggler_is_shard_deterministic() {
    check_protocol(&Toggler { max_toggles: 2 }, 5, "toggler");
}

/// A pure pseudo-random protocol: the enabled steps are a deterministic
/// mix of the seed and the local view, exercising irregular branching
/// (0–3 actions per node, sends to varying peers, payload variety) that
/// the hand-written protocols never produce.
struct SeededChaos {
    n: usize,
    seed: u64,
}

impl SeededChaos {
    fn mix(&self, p: ProcessId, view: &LocalView) -> u64 {
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        h = h
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(p.index() as u64);
        for s in view.steps() {
            let tag = match *s {
                LocalStep::Sent { to, payload } => {
                    (1u64 << 32) | ((to.index() as u64) << 16) | u64::from(payload)
                }
                LocalStep::Received { from, payload } => {
                    (2u64 << 32) | ((from.index() as u64) << 16) | u64::from(payload)
                }
                LocalStep::Did { action } => (3u64 << 32) | u64::from(action.tag()),
            };
            h = (h ^ tag).wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

impl Protocol for SeededChaos {
    fn system_size(&self) -> usize {
        self.n
    }

    fn actions(&self, p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
        if view.len() >= 4 {
            return vec![];
        }
        let h = self.mix(p, view);
        let mut out = Vec::new();
        if h & 1 != 0 {
            out.push(ProtoAction::Send {
                to: ProcessId::new(((h >> 8) as usize) % self.n),
                payload: ((h >> 16) & 0xf) as u32,
            });
        }
        if h & 2 != 0 {
            out.push(ProtoAction::Internal {
                action: ActionId::new(((h >> 24) & 0xff) as u32),
            });
        }
        out
    }

    fn accepts(&self, p: ProcessId, view: &LocalView, from: ProcessId, payload: u32) -> bool {
        // an irregular but pure gate
        (self.mix(p, view) ^ (from.index() as u64) ^ u64::from(payload)) & 4 != 0
    }
}

#[test]
fn seeded_random_protocols_are_shard_deterministic() {
    for seed in [11u64, 5417, 990_001] {
        check_protocol(
            &SeededChaos { n: 3, seed },
            6,
            &format!("chaos(seed={seed})"),
        );
    }
}

#[test]
fn dedupe_and_trivial_quotient_partition_identically() {
    // dedupe keys on event-id projection signatures; the quotient keys
    // on symmetry.rs structural signatures. Under the trivial group the
    // two definitions of the [D]-partition must never drift — certified
    // here on the irregular payload-rich chaos protocols, not just the
    // hand-written ones.
    for seed in [7u64, 23, 4242] {
        let p = SeededChaos { n: 3, seed };
        let limits = EnumerationLimits {
            max_events: 6,
            max_computations: 1_000_000,
        };
        let ded = enumerate_sharded(&p, limits, &ShardConfig::with_shards(2).dedupe())
            .expect("within budget");
        let quo = enumerate_sharded(&p, limits, &ShardConfig::with_shards(2).quotient())
            .expect("within budget");
        assert_identical(
            &quo.universe,
            &ded.universe,
            &format!("trivial-quotient vs dedupe chaos(seed={seed})"),
        );
        let orbits = quo.orbits.expect("quotient attaches orbits");
        assert_eq!(orbits.group_order(), 1);
        assert_eq!(orbits.full_size() as usize, ded.stats.explored);
    }
}

#[test]
fn dedupe_is_shard_deterministic_too() {
    // with dedupe on, the canonical universe must still be independent of
    // the shard count (the merge is what defines the order)
    for seed in [7u64, 23, 4242] {
        let p = SeededChaos { n: 3, seed };
        let limits = EnumerationLimits {
            max_events: 6,
            max_computations: 1_000_000,
        };
        let reference = enumerate_sharded(&p, limits, &ShardConfig::with_shards(1).dedupe())
            .expect("within budget");
        for shards in [2usize, 8] {
            let out = enumerate_sharded(&p, limits, &ShardConfig::with_shards(shards).dedupe())
                .expect("within budget");
            assert_identical(
                &out.universe,
                &reference.universe,
                &format!("dedupe chaos(seed={seed}) @ {shards} shards"),
            );
            assert_eq!(out.stats.explored, reference.stats.explored);
            assert_eq!(out.stats.unique, reference.stats.unique);
        }
    }
}

// ---------------------------------------------------------------------
// Streaming merge vs buffered merge (PR 4)
// ---------------------------------------------------------------------

/// The buffered reference configuration: one batch per task (the batch
/// cap far exceeds any subtree here), i.e. exactly the pre-streaming
/// engine's buffering behaviour.
fn buffered_cfg(shards: usize) -> ShardConfig {
    ShardConfig::with_shards(shards).batch_nodes(usize::MAX)
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

    /// The streaming merge is byte-identical to the buffered merge (and
    /// to the sequential reference) for every shard count × batch size,
    /// across seeded irregular protocols — computations, `CompId` order,
    /// event bindings and payload tables all agree.
    #[test]
    fn streaming_merge_matches_buffered_merge(
        seed in 0u64..1_000_000,
        n in 2usize..4,
        batch in 1usize..64,
    ) {
        let p = SeededChaos { n, seed };
        let limits = EnumerationLimits {
            max_events: 5,
            max_computations: 1_000_000,
        };
        let seq = enumerate(&p, limits).expect("within budget");
        for shards in [1usize, 2, 8] {
            let buffered = enumerate_sharded(&p, limits, &buffered_cfg(shards))
                .expect("within budget");
            let streamed = enumerate_sharded(
                &p,
                limits,
                &ShardConfig::with_shards(shards).batch_nodes(batch),
            )
            .expect("within budget");
            assert_identical(
                &streamed.universe,
                &buffered.universe,
                &format!("streamed vs buffered chaos(seed={seed}, n={n}) @ {shards} shards, batch={batch}"),
            );
            assert_identical(
                &streamed.universe,
                &seq,
                &format!("streamed vs sequential chaos(seed={seed}, n={n}) @ {shards} shards, batch={batch}"),
            );
            assert_eq!(streamed.stats.explored, buffered.stats.explored);
            assert_eq!(streamed.stats.unique, buffered.stats.unique);
            // streaming in smaller batches may only raise the batch
            // count, never change what is merged
            assert!(streamed.stats.batches >= buffered.stats.batches);
        }
    }
}

#[test]
fn streaming_merge_matches_buffered_for_shipped_protocols() {
    // the fixed-seed corollary of the proptest over the real protocols:
    // streaming with a tiny batch size changes nothing but the batch count
    let limits = EnumerationLimits {
        max_events: 5,
        max_computations: 1_000_000,
    };
    for shards in [1usize, 2, 8] {
        let buffered = enumerate_sharded(&TokenBus::new(3), limits, &buffered_cfg(shards)).unwrap();
        let streamed = enumerate_sharded(
            &TokenBus::new(3),
            limits,
            &ShardConfig::with_shards(shards).batch_nodes(3),
        )
        .unwrap();
        assert_identical(
            &streamed.universe,
            &buffered.universe,
            &format!("token_bus streamed vs buffered @ {shards} shards"),
        );
    }
}

#[test]
fn streaming_quotient_preserves_orbit_multiplicities() {
    // multiplicities are accumulated in splice order: batch size and
    // shard count must not perturb them
    let limits = EnumerationLimits {
        max_events: 6,
        max_computations: 1_000_000,
    };
    let reference =
        enumerate_sharded(&PushGossip { n: 3 }, limits, &buffered_cfg(1).quotient()).unwrap();
    let ref_orbits = reference.orbits.expect("quotient attaches orbits");
    for shards in [2usize, 8] {
        for batch in [1usize, 17] {
            let out = enumerate_sharded(
                &PushGossip { n: 3 },
                limits,
                &ShardConfig::with_shards(shards)
                    .quotient()
                    .batch_nodes(batch),
            )
            .unwrap();
            let orbits = out.orbits.expect("quotient attaches orbits");
            assert_identical(
                &out.universe,
                &reference.universe,
                &format!("quotient gossip @ {shards} shards, batch={batch}"),
            );
            assert_eq!(orbits.full_size(), ref_orbits.full_size());
            for id in out.universe.universe().ids() {
                assert_eq!(
                    orbits.multiplicity(id),
                    ref_orbits.multiplicity(id),
                    "multiplicity of {id} @ {shards} shards, batch={batch}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// ClassCache generation keys across the renumbering merge (PR 4)
// ---------------------------------------------------------------------

/// Regression test: the streaming merge's trusted insertions defer the
/// universe's generation bump to one commit at `finish()`, and that
/// committed generation must behave exactly like any other state key —
/// distinct across enumerations (even byte-identical ones), stable for
/// the lifetime of the result, and shared by clones — so a shared
/// [`ClassCache`] can never serve one enumeration's `[P]`-partitions to
/// another.
#[test]
fn class_cache_generation_keys_survive_renumbering() {
    use hpl_core::{ClassCache, Evaluator, Formula, Interpretation};
    use hpl_model::ProcessSet;

    let limits = EnumerationLimits {
        max_events: 5,
        max_computations: 1_000_000,
    };
    let cfg = ShardConfig::with_shards(2).batch_nodes(4);
    let a = enumerate_sharded(&TokenBus::new(3), limits, &cfg).unwrap();
    let b = enumerate_sharded(&TokenBus::new(3), limits, &cfg).unwrap();

    // byte-identical universes, distinct state keys
    assert_identical(&a.universe, &b.universe, "repeat enumeration");
    let (ua, ub) = (a.universe.universe(), b.universe.universe());
    assert_ne!(
        ua.generation(),
        ub.generation(),
        "each enumeration must commit a fresh generation"
    );
    // the key is stable: observing it twice gives the same value
    assert_eq!(ua.generation(), ua.generation());
    // clones share content and therefore the key
    assert_eq!(ua.clone().generation(), ua.generation());

    // a shared cache serves both universes correct partitions (both
    // generations fit the retention window; neither aliases the other)
    let cache = ClassCache::shared();
    let mut interp = Interpretation::new();
    let moved = interp.register("moved", |c| c.sends() > 0);
    let f = Formula::knows(
        ProcessSet::singleton(hpl_model::ProcessId::new(1)),
        Formula::atom(moved),
    );
    let sat_a = Evaluator::with_class_cache(ua, &interp, cache.clone()).sat_set(&f);
    let sat_b = Evaluator::with_class_cache(ub, &interp, cache.clone()).sat_set(&f);
    assert_eq!(sat_a, sat_b, "identical universes, identical verdicts");
    assert!(
        cache.len() >= 2,
        "distinct generations must occupy distinct cache slots"
    );
    // and a warm re-query of the first universe still answers correctly
    let sat_a2 = Evaluator::with_class_cache(ua, &interp, cache).sat_set(&f);
    assert_eq!(sat_a, sat_a2);
}
