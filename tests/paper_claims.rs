//! Integration tests: the paper's headline claims, end to end.
//!
//! Each test reproduces one claim of Chandy & Misra (PODC 1985) through
//! the public API of the workspace crates, at depths small enough for
//! the regular test suite (the `repro` binary runs the fuller versions).

use hpl_core::{Evaluator, Formula, Interpretation};
use hpl_model::ProcessSet;
use hpl_protocols::{failure, token_bus, tracking, two_generals};

#[test]
fn token_bus_nested_knowledge_claim() {
    let report = token_bus::verify_paper_claim(6).expect("within budget");
    assert!(
        report.verified(),
        "§4.1: r must know the flanking ignorance whenever it holds the token ({report:?})"
    );
}

#[test]
fn failure_detection_impossible_asynchronously() {
    let report = failure::verify_impossibility(2, 5).expect("within budget");
    assert!(
        report.verified(),
        "§5: the observer must stay unsure ({report:?})"
    );
}

#[test]
fn tracking_requires_unsureness_at_change() {
    let report = tracking::verify_unsure_at_change(2, 5).expect("within budget");
    assert!(
        report.verified(),
        "§5: owner must know tracker is unsure ({report:?})"
    );
    assert_eq!(report.tracker_sure_count, 0);
}

#[test]
fn common_knowledge_is_constant_for_the_generals() {
    let pu = two_generals::universe(2, 5).expect("within budget");
    let mut interp = Interpretation::new();
    let attack = two_generals::attack_atom(&mut interp);
    let mut eval = Evaluator::new(pu.universe(), &interp);
    assert!(two_generals::common_knowledge_impossible(
        &mut eval, &attack
    ));
    // while plain and nested knowledge ARE attainable
    let k1 = two_generals::nested(1, &attack);
    let sat = eval.sat_set(&k1);
    assert!(!sat.is_empty(), "g1 does learn of the attack");
}

#[test]
fn knowledge_axioms_hold_on_the_generals_universe() {
    let pu = two_generals::universe(2, 5).expect("within budget");
    let mut interp = Interpretation::new();
    let attack = two_generals::attack_atom(&mut interp);
    let mut eval = Evaluator::new(pu.universe(), &interp);
    let sets = vec![
        ProcessSet::from_indices([0]),
        ProcessSet::from_indices([1]),
        ProcessSet::full(2),
    ];
    let predicates = vec![attack.clone(), attack.not()];
    let report = hpl_core::axioms::check_knowledge_facts(&mut eval, &predicates, &sets);
    assert!(report.passed(), "\n{}", report.render());
}

#[test]
fn local_predicate_facts_hold_on_the_toggler() {
    let pu = hpl_core::enumerate(
        &tracking::Toggler { max_toggles: 2 },
        hpl_core::EnumerationLimits::depth(5),
    )
    .expect("within budget");
    let mut interp = Interpretation::new();
    let bit = Formula::atom(interp.register("bit", tracking::bit));
    let mut eval = Evaluator::new(pu.universe(), &interp);
    let sets = vec![
        ProcessSet::from_indices([0]),
        ProcessSet::from_indices([1]),
        ProcessSet::full(2),
    ];
    let report = hpl_core::local::check_local_facts(&mut eval, &[bit, Formula::True], &sets);
    assert!(report.passed(), "\n{}", report.render());
}

#[test]
fn predicates_respect_the_d_congruence() {
    // every atom used by the protocol layers must satisfy the paper's
    // well-formedness condition x [D] y ⇒ b(x) = b(y)
    let pu = token_bus::universe(3, 5).expect("within budget");
    let mut interp = Interpretation::new();
    let _ = token_bus::token_atoms(&mut interp, 3);
    assert!(interp.validate(pu.universe()).is_empty());

    let pu2 = two_generals::universe(2, 5).expect("within budget");
    let mut interp2 = Interpretation::new();
    let _ = two_generals::attack_atom(&mut interp2);
    assert!(interp2.validate(pu2.universe()).is_empty());
}
