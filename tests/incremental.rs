//! Differential growth-testing harness for incremental enumeration.
//!
//! `extend_sharded` grows a checkpointed universe in place; this suite
//! certifies, over randomized protocols × shard counts {1, 2, 8} ×
//! merge modes {full, dedupe, quotient} × batch sizes × multi-step
//! growth schedules (e.g. 4 → 6 → 9), that at **every** horizon of a
//! schedule the grown universe is byte-identical to from-scratch
//! enumeration at that horizon: same computations in the same `CompId`
//! order, same event-id bindings, same payload table. Orbit
//! multiplicities (quotient mode) and `ClassCache` partitions grown
//! incrementally through the recorded `GrowthMap` ride along: both
//! must equal their cold-rebuilt counterparts.

use hpl_core::{
    enumerate_sharded, extend_sharded, ClassCache, EnumerationLimits, IsoIndex, LocalStep,
    LocalView, ProtoAction, Protocol, ProtocolUniverse, ShardConfig, ShardedEnumeration,
};
use hpl_model::{ActionId, ProcessId, ProcessSet};
use proptest::prelude::*;
use std::sync::Arc;

/// A pure pseudo-random protocol with a per-process step cap: enabled
/// actions are a deterministic mix of the seed and the local view, so
/// every seed is a different protocol exercising irregular branching,
/// sends with varied payloads, receive gating, and internal actions.
struct ChaosGrow {
    n: usize,
    seed: u64,
    max_len: usize,
}

impl ChaosGrow {
    fn mix(&self, p: ProcessId, view: &LocalView) -> u64 {
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        h = h
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(p.index() as u64);
        for s in view.steps() {
            let tag = match *s {
                LocalStep::Sent { to, payload } => {
                    (1u64 << 32) | ((to.index() as u64) << 16) | u64::from(payload)
                }
                LocalStep::Received { from, payload } => {
                    (2u64 << 32) | ((from.index() as u64) << 16) | u64::from(payload)
                }
                LocalStep::Did { action } => (3u64 << 32) | u64::from(action.tag()),
            };
            h = (h ^ tag).wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

impl Protocol for ChaosGrow {
    fn system_size(&self) -> usize {
        self.n
    }

    fn actions(&self, p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
        if view.len() >= self.max_len {
            return vec![];
        }
        let h = self.mix(p, view);
        let mut out = Vec::new();
        if h & 1 != 0 {
            out.push(ProtoAction::Send {
                to: ProcessId::new(((h >> 8) as usize) % self.n),
                payload: ((h >> 16) & 0x7) as u32,
            });
        }
        if h & 2 != 0 {
            out.push(ProtoAction::Internal {
                action: ActionId::new(((h >> 24) & 0xf) as u32),
            });
        }
        out
    }

    fn accepts(&self, p: ProcessId, view: &LocalView, from: ProcessId, payload: u32) -> bool {
        (self.mix(p, view) ^ (from.index() as u64) ^ u64::from(payload)) & 4 != 0
    }
}

/// Byte-identity of two protocol universes: sizes, per-id
/// computations, event-id bindings, payload tables.
fn assert_identical(grown: &ProtocolUniverse, scratch: &ProtocolUniverse, label: &str) {
    assert_eq!(
        grown.universe().len(),
        scratch.universe().len(),
        "{label}: universe size"
    );
    for (id, c) in scratch.universe().iter() {
        assert_eq!(grown.universe().get(id), c, "{label}: computation {id}");
        for e in c.iter() {
            assert_eq!(
                grown.universe().event(e.id()),
                scratch.universe().event(e.id()),
                "{label}: binding of {:?}",
                e.id()
            );
        }
    }
    assert_eq!(
        grown.payload_table(),
        scratch.payload_table(),
        "{label}: payload table"
    );
}

/// Orbit structure identity: representative count and per-representative
/// multiplicity (quotient mode only; both sides must agree on presence).
fn assert_same_orbits(grown: &ShardedEnumeration, scratch: &ShardedEnumeration, label: &str) {
    match (&grown.orbits, &scratch.orbits) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.orbit_count(), b.orbit_count(), "{label}: orbit count");
            for (id, _) in scratch.universe.universe().iter() {
                assert_eq!(
                    a.multiplicity(id),
                    b.multiplicity(id),
                    "{label}: multiplicity of {id}"
                );
            }
            assert_eq!(a.full_size(), b.full_size(), "{label}: full size");
        }
        (a, b) => panic!(
            "{label}: orbit presence diverged (grown: {}, scratch: {})",
            a.is_some(),
            b.is_some()
        ),
    }
}

/// Partition identity: the `ClassCache`-grown partition of the deeper
/// universe must equal a cold rebuild, for every queried process set.
fn assert_same_partitions(
    warm: &Arc<ClassCache>,
    grown: &ShardedEnumeration,
    sets: &[ProcessSet],
    label: &str,
) {
    let inc = IsoIndex::with_cache(grown.universe.universe(), Arc::clone(warm));
    let cold = IsoIndex::new(grown.universe.universe());
    for &p in sets {
        let a = inc.classes(p);
        let b = cold.classes(p);
        assert_eq!(a.class_count(), b.class_count(), "{label}: classes of {p}");
        for (id, _) in grown.universe.universe().iter() {
            assert_eq!(
                a.class_of(id),
                b.class_of(id),
                "{label}: class of {id} under {p}"
            );
        }
        for cl in 0..a.class_count() {
            assert_eq!(
                a.member_set(cl),
                b.member_set(cl),
                "{label}: member set {cl} under {p}"
            );
        }
    }
}

fn config_for(mode: usize, shards: usize, batch: usize) -> ShardConfig {
    let base = ShardConfig::with_shards(shards)
        .batch_nodes(batch)
        .checkpoint();
    match mode {
        0 => base,
        1 => base.dedupe(),
        _ => base.quotient(),
    }
}

fn mode_name(mode: usize) -> &'static str {
    match mode {
        0 => "full",
        1 => "dedupe",
        _ => "quotient",
    }
}

/// Growth schedules: strictly increasing horizons; the harness grows
/// along each prefix and certifies every intermediate horizon.
const SCHEDULES: &[&[usize]] = &[&[4, 6, 9], &[3, 5, 7, 9], &[2, 9], &[5, 6, 7]];

fn limits(depth: usize) -> EnumerationLimits {
    EnumerationLimits {
        max_events: depth,
        max_computations: 1_000_000,
    }
}

/// The differential check for one (protocol, shards, mode, batch,
/// schedule) cell. Returns universes sizes seen, for the vacuity guard.
fn check_growth_schedule(
    protocol: &ChaosGrow,
    shards: usize,
    mode: usize,
    batch: usize,
    schedule: &[usize],
) -> usize {
    let cfg = config_for(mode, shards, batch);
    let label = |d: usize| {
        format!(
            "seed {} @ {} shard(s), {} mode, batch {batch}, horizon {d}",
            protocol.seed,
            shards,
            mode_name(mode)
        )
    };
    let sets = [
        ProcessSet::from_indices([0]),
        ProcessSet::from_indices([1, 2]),
        ProcessSet::full(protocol.n),
    ];

    let mut cur = enumerate_sharded(protocol, limits(schedule[0]), &cfg).expect("seed horizon");
    let mut grown_total = cur.universe.universe().len();
    for &d in &schedule[1..] {
        let frontier = cur.frontier.take().expect("checkpoint requested");
        let next = extend_sharded(protocol, &frontier, limits(d), &cfg).expect("extension");
        let scratch = enumerate_sharded(protocol, limits(d), &cfg).expect("scratch");
        assert_identical(&next.universe, &scratch.universe, &label(d));
        assert_same_orbits(&next, &scratch, &label(d));

        let growth = next.growth.as_ref().expect("extension yields growth map");
        assert_eq!(
            growth.len(),
            cur.universe.universe().len(),
            "{}: growth map covers the source universe",
            label(d)
        );

        // ClassCache differential: warm on the shallow universe, learn
        // the growth edge, and the grown partitions must be
        // byte-identical to cold rebuilds on the deeper universe
        let cache = ClassCache::shared();
        let warm = IsoIndex::with_cache(cur.universe.universe(), Arc::clone(&cache));
        for &p in &sets {
            let _ = warm.classes(p);
        }
        cache.note_growth(growth);
        assert_same_partitions(&cache, &next, &sets, &label(d));

        grown_total += next.universe.universe().len();
        cur = next;
    }
    grown_total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole certificate: grown universes are byte-identical to
    /// from-scratch enumeration at every horizon, for every shard
    /// count × merge mode × schedule, on randomized protocols.
    #[test]
    fn grown_universes_are_byte_identical_to_scratch(
        seed in 0u64..1_000_000,
        shards_ix in 0usize..3,
        mode in 0usize..3,
        schedule_ix in 0usize..SCHEDULES.len(),
    ) {
        let shards = [1, 2, 8][shards_ix];
        let protocol = ChaosGrow { n: 3, seed, max_len: 3 };
        check_growth_schedule(&protocol, shards, mode, 64, SCHEDULES[schedule_ix]);
    }

    /// Tiny batches force mid-subtree flushes and parked-batch reorder
    /// traffic on the extension path too.
    #[test]
    fn growth_is_batch_size_invariant(
        seed in 1_000_000u64..2_000_000,
        batch in 1usize..16,
        mode in 0usize..3,
    ) {
        let protocol = ChaosGrow { n: 3, seed, max_len: 3 };
        check_growth_schedule(&protocol, 2, mode, batch, &[4, 6, 9]);
    }
}

/// The harness must not pass vacuously: over a handful of fixed seeds,
/// growth steps must actually add computations beyond the replayed
/// frontier at least somewhere.
#[test]
fn growth_harness_is_not_vacuous() {
    let mut total_new = 0usize;
    for seed in [7u64, 1031, 88_417] {
        let protocol = ChaosGrow {
            n: 3,
            seed,
            max_len: 3,
        };
        let cfg = config_for(0, 2, 64);
        let shallow = enumerate_sharded(&protocol, limits(3), &cfg).expect("shallow");
        let frontier = shallow.frontier.as_ref().expect("checkpoint");
        let next = extend_sharded(&protocol, frontier, limits(9), &cfg).expect("extension");
        assert!(
            next.stats.resumed > 0,
            "seed {seed}: extension should replay the frontier"
        );
        total_new += next
            .universe
            .universe()
            .len()
            .saturating_sub(shallow.universe.universe().len());
    }
    assert!(
        total_new > 0,
        "no growth schedule added computations — the differential harness is vacuous"
    );
}
