//! Integration suite for the fault-model universe pipeline: seeded
//! lossy/partitioned simulations → canonicalized traces → deduplicated,
//! prefix-closed universes — byte-deterministic across shard counts —
//! plus the empirical Two Generals witness as a directed assertion.

use hpl_core::{
    build_fault_universe, Evaluator, FaultModel, FaultUniverse, Formula, Interpretation,
};
use hpl_model::ProcessId;
use hpl_protocols::two_generals::{
    attack_atom, fault_witness, nested, sim_fault_universe, GeneralNode,
};
use hpl_sim::{ChannelConfig, DelayModel, NetworkConfig, PartitionSchedule, SimTime};

/// Serializes everything observable about a fault universe, for
/// byte-identity comparisons.
fn fingerprint(fu: &FaultUniverse) -> String {
    let mut out = String::new();
    for (id, c) in fu.universe.iter() {
        out.push_str(&format!("#{} {}\n", id.index(), c.render()));
    }
    out.push_str(&format!("runs {:?}\nstats {:?}\n", fu.run_ids, fu.stats));
    out
}

fn lossy_partitioned_model(runs: usize, drop: f64) -> FaultModel {
    let net = NetworkConfig::uniform(ChannelConfig {
        delay: DelayModel::Uniform { lo: 1, hi: 12 },
        drop_probability: drop,
        fifo: false,
    })
    .with_partition(PartitionSchedule::split(
        [0],
        [1],
        SimTime::from_ticks(15),
        Some(SimTime::from_ticks(30)),
    ));
    FaultModel::new(net).runs(runs).seeded(29)
}

#[test]
fn fault_universe_is_byte_identical_across_shard_counts() {
    let model = lossy_partitioned_model(16, 0.25);
    let reference = fingerprint(&sim_fault_universe(3, &model, 1).unwrap());
    for shards in [2, 8] {
        let alt = fingerprint(&sim_fault_universe(3, &model, shards).unwrap());
        assert_eq!(
            reference, alt,
            "{shards}-shard construction diverged from the sequential reference"
        );
    }
}

#[test]
fn fault_universe_replays_identically() {
    let model = lossy_partitioned_model(10, 0.4);
    let a = fingerprint(&sim_fault_universe(2, &model, 4).unwrap());
    let b = fingerprint(&sim_fault_universe(2, &model, 4).unwrap());
    assert_eq!(
        a, b,
        "same (seed, fault config) must rebuild byte-identically"
    );
}

#[test]
fn universes_are_deduplicated_and_prefix_closed() {
    let model = lossy_partitioned_model(20, 0.3);
    let fu = sim_fault_universe(3, &model, 4).unwrap();
    assert!(fu.universe.is_prefix_closed());
    assert_eq!(fu.run_ids.len(), 20);
    assert!(fu.stats.distinct_traces <= 20);
    assert!(
        fu.stats.distinct_traces < 20,
        "20 lossy runs of a 6-message exchange collide somewhere"
    );
    // every run id points at a real computation in the universe
    for &id in &fu.run_ids {
        let _ = fu.universe.get(id);
    }
    // conservation carries through the aggregation
    assert_eq!(fu.stats.sent, fu.stats.delivered + fu.stats.dropped);
    assert!(fu.stats.partition_dropped > 0, "the window must bite");
}

/// The Two Generals impossibility as a directed integration test over
/// the whole sweep: at every drop rate — zero included — common
/// knowledge of `attack-planned` is unattained in the sampled universe,
/// while plain knowledge climbs wherever messengers survive.
#[test]
fn two_generals_witness_over_the_drop_sweep() {
    let base = FaultModel::new(NetworkConfig::uniform(ChannelConfig {
        delay: DelayModel::Uniform { lo: 1, hi: 10 },
        drop_probability: 0.0,
        fifo: false,
    }))
    .runs(24)
    .seeded(17);
    let mut prev_delivered = usize::MAX;
    for model in base.crash_drop_grid(&[0.0, 0.1, 0.25, 0.5], &[]) {
        let w = fault_witness(3, &model, 4).unwrap();
        assert!(
            !w.ck_attained,
            "common knowledge attained at drop {}",
            w.drop_probability
        );
        assert!(
            w.knows_attained,
            "plain knowledge dead at drop {}",
            w.drop_probability
        );
        if w.drop_probability > 0.0 {
            assert!(w.dropped > 0);
            assert!(
                w.max_knowledge_level >= 1,
                "survivors still teach g1 something"
            );
        }
        // paired seeds make the delivered count monotone along the sweep
        assert!(
            w.delivered <= prev_delivered,
            "coupled sweep must not deliver more at a higher drop rate"
        );
        prev_delivered = w.delivered;
    }
}

/// The same witness, evaluated by hand against the raw universe — the
/// nested ladder must agree with `fault_witness`'s summary fields.
#[test]
fn witness_fields_match_direct_evaluation() {
    let model = lossy_partitioned_model(12, 0.2);
    let fu = sim_fault_universe(2, &model, 2).unwrap();
    let w = fault_witness(2, &model, 2).unwrap();
    let mut interp = Interpretation::new();
    let attack = attack_atom(&mut interp);
    let mut eval = Evaluator::new(&fu.universe, &interp);
    assert_eq!(
        w.ck_attained,
        !eval.sat_set(&Formula::common(attack.clone())).is_empty()
    );
    for k in 1..=w.max_knowledge_level {
        assert!(
            !eval.sat_set(&nested(k, &attack)).is_empty(),
            "level {k} claimed attained but unsatisfied"
        );
    }
    assert!(eval
        .sat_set(&nested(w.max_knowledge_level + 1, &attack))
        .is_empty());
    assert_eq!(w.universe_size, fu.universe.len());
}

/// Crash × drop grid points build universes too (the other tentpole
/// axis): a crashed acker caps the exchange, and the trace records the
/// crash as an internal event every knowledge query can see.
#[test]
fn crash_grid_points_are_enumerable() {
    let base = FaultModel::new(NetworkConfig::uniform(ChannelConfig {
        delay: DelayModel::Constant(3),
        drop_probability: 0.0,
        fifo: false,
    }))
    .runs(4)
    .seeded(7);
    let grid = base.crash_drop_grid(
        &[0.0, 0.5],
        &[
            Vec::new(),
            vec![(ProcessId::new(1), SimTime::from_ticks(2))],
        ],
    );
    assert_eq!(grid.len(), 4);
    for model in &grid {
        let fu = build_fault_universe(2, model, 2, |_| Box::new(GeneralNode::new(2))).unwrap();
        assert!(!fu.universe.is_empty());
        if !model.crashes.is_empty() {
            // g1 crashes at t2, before the first delivery at t3: nothing
            // is ever received in any run
            assert_eq!(
                fu.stats.delivered, 0,
                "a g1 crashed before first delivery cannot receive"
            );
        }
    }
}
