//! Property suites over random `ComputationBuilder` traces: Theorem 1's
//! dichotomy is exhaustive and exclusive, and Lemma-1 fusion outputs
//! round-trip through full computation re-validation.

use hpl_core::{decompose, fuse_lemma1, Decomposition};
use hpl_model::{Computation, ComputationBuilder, MessageId, ProcessId, ProcessSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A random valid computation over `n` processes (sends, matched
/// receives, internal events).
fn random_computation(n: usize, steps: usize, seed: u64) -> Computation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ComputationBuilder::new(n);
    let mut in_flight: Vec<(ProcessId, MessageId)> = Vec::new();
    for _ in 0..steps {
        match rng.random_range(0..3) {
            0 => {
                let from = ProcessId::new(rng.random_range(0..n));
                let to = ProcessId::new(rng.random_range(0..n));
                let m = b.send(from, to).unwrap();
                in_flight.push((to, m));
            }
            1 if !in_flight.is_empty() => {
                let k = rng.random_range(0..in_flight.len());
                let (to, m) = in_flight.remove(k);
                b.receive(to, m).unwrap();
            }
            _ => {
                b.internal(ProcessId::new(rng.random_range(0..n))).unwrap();
            }
        }
    }
    b.finish()
}

/// Extends `x` with `steps` random events confined to processes in
/// `allowed` (sends and receives stay within the set), so the extension
/// never touches the complementary side.
fn extend_within(
    x: &Computation,
    allowed: ProcessSet,
    steps: usize,
    seed: u64,
    id_base: usize,
) -> Computation {
    let members: Vec<usize> = allowed.iter().map(|p| p.index()).collect();
    if members.is_empty() {
        return x.clone();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let n = x.system_size();
    let mut b = ComputationBuilder::with_id_offsets(n, id_base, id_base);
    let mut in_flight: Vec<(ProcessId, MessageId)> = Vec::new();
    for _ in 0..steps {
        match rng.random_range(0..3) {
            0 => {
                let from = ProcessId::new(members[rng.random_range(0..members.len())]);
                let to = ProcessId::new(members[rng.random_range(0..members.len())]);
                let m = b.send(from, to).unwrap();
                in_flight.push((to, m));
            }
            1 if !in_flight.is_empty() => {
                let k = rng.random_range(0..in_flight.len());
                let (to, m) = in_flight.remove(k);
                b.receive(to, m).unwrap();
            }
            _ => {
                let p = ProcessId::new(members[rng.random_range(0..members.len())]);
                b.internal(p).unwrap();
            }
        }
    }
    x.extended(b.finish().events().iter().copied())
        .expect("within-set extension of a valid computation is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Theorem 1: `decompose` always returns exactly one witness — an iso
    /// path when no chain exists, a chain witness only when a chain
    /// exists — and whichever it returns verifies against the inputs.
    #[test]
    fn theorem1_returns_exactly_one_verified_witness(
        seed in 0u64..400,
        steps in 0usize..20,
        cut_num in 0usize..5,
        nsets in 1usize..4,
        set_seed in 0u64..60,
    ) {
        let n = 3;
        let z = random_computation(n, steps, seed);
        let cut = (z.len() * cut_num) / 5;
        let x = z.prefix(cut);
        let mut rng = StdRng::seed_from_u64(set_seed);
        let sets: Vec<ProcessSet> = (0..nsets)
            .map(|_| ProcessSet::from_bits(u128::from(rng.random_range(1u8..8))))
            .collect();

        let chain_exists = hpl_model::has_chain(&z, cut, &sets);
        // "never neither": decompose is total on prefixes
        let witness = decompose(&x, &z, &sets).unwrap();
        match witness {
            Decomposition::Path(p) => {
                prop_assert!(p.verify(&x, &z, &sets), "iso path must verify");
            }
            Decomposition::Chain(w) => {
                prop_assert!(w.verify(&z, cut, &sets), "chain witness must verify");
                prop_assert!(chain_exists, "a chain witness implies a chain exists");
            }
        }
        // "never both": when no chain exists, the answer must be a path —
        // a chain witness here would be a false positive
        if !chain_exists {
            prop_assert!(decompose(&x, &z, &sets).unwrap().is_path());
        }
    }

    /// Theorem 1 is reflexive at the degenerate cut: `x = z` always
    /// yields an isomorphism path (the empty suffix carries no chain).
    #[test]
    fn theorem1_trivial_cut_is_always_a_path(
        seed in 0u64..150,
        steps in 0usize..16,
        nsets in 1usize..4,
    ) {
        let z = random_computation(3, steps, seed);
        let sets: Vec<ProcessSet> = (0..nsets)
            .map(|i| ProcessSet::from_indices([i % 3]))
            .collect();
        let witness = decompose(&z, &z, &sets).unwrap();
        prop_assert!(witness.is_path(), "empty suffix cannot contain a chain");
    }

    /// Lemma-1 fusion round-trips: the fused result is itself a valid
    /// system computation (re-validating its event list reproduces it
    /// exactly), extends `x`, and agrees with each input on its side.
    #[test]
    fn fusion_lemma1_roundtrips_as_computation(
        seed in 0u64..200,
        steps_y in 0usize..10,
        steps_z in 0usize..10,
        pbits in 0u8..8,
    ) {
        let n = 3;
        let x = random_computation(n, 6, seed);
        let d = ProcessSet::full(n);
        let p = ProcessSet::from_bits(u128::from(pbits & 0b111));
        let q = p.complement(d);
        // y extends x on Q only, z extends x on P only — Lemma 1's
        // hypotheses x [P] y and x [Q] z hold by construction.
        let y = extend_within(&x, q, steps_y, seed.wrapping_add(1), 1_000);
        let z = extend_within(&x, p, steps_z, seed.wrapping_add(2), 2_000);

        let w = fuse_lemma1(&x, &y, &z, p, q).unwrap();

        // round-trip: w's event list re-validates into the same computation
        let revalidated =
            Computation::from_events(w.system_size(), w.events().to_vec()).unwrap();
        prop_assert_eq!(&revalidated, &w);

        prop_assert!(x.is_prefix_of(&w), "fusion must extend the common prefix");
        prop_assert!(y.agrees_on(&w, q), "w must carry y's Q-side");
        prop_assert!(z.agrees_on(&w, p), "w must carry z's P-side");
        // and nothing else: the fused length is exactly both suffixes over x
        let expect = y.len() + z.len() - x.len();
        prop_assert_eq!(w.len(), expect);
    }

    /// Fusion round-trips survive a second fusion: fusing `w` with itself
    /// over `x` is still valid and reproduces `w` (idempotence on the
    /// degenerate square).
    #[test]
    fn fusion_lemma1_degenerate_self_fusion(
        seed in 0u64..120,
        steps in 0usize..8,
    ) {
        let n = 2;
        let x = random_computation(n, 4, seed);
        let d = ProcessSet::full(n);
        let p = ProcessSet::from_indices([0]);
        let q = p.complement(d);
        let y = extend_within(&x, q, steps, seed.wrapping_add(9), 3_000);
        // z = x: the P-side adds nothing, so fusion must reproduce y.
        let w = fuse_lemma1(&x, &y, &x, p, q).unwrap();
        prop_assert_eq!(&w, &y);
    }
}
