//! Integration tests: the simulator / runtime → model → calculus
//! pipeline.
//!
//! Traces recorded by `hpl-sim` and `hpl-runtime` are validated
//! computations; the calculus (causality, chains, Theorem 1) applies to
//! them directly.

use hpl_core::{decompose, Decomposition};
use hpl_model::{trace, CausalClosure, ProcessId, ProcessSet};
use hpl_protocols::termination::{
    detection_chains_ok, run_detector, verify_detection, DetectorKind, WorkloadConfig,
};
use hpl_protocols::token_ring;
use hpl_runtime::{Behavior, Runtime, ThreadCtx};
use hpl_sim::{ChannelConfig, DelayModel, NetworkConfig, SimTime, Simulation};

fn reorder_net(hi: u64) -> NetworkConfig {
    NetworkConfig::uniform(ChannelConfig {
        delay: DelayModel::Uniform { lo: 1, hi },
        drop_probability: 0.0,
        fifo: false,
    })
}

#[test]
fn sim_traces_roundtrip_through_the_text_codec() {
    let cfg = WorkloadConfig {
        n: 4,
        budget: 10,
        fanout: 2,
        work_time: 3,
        seed: 5,
        spare_root: false,
    };
    let out = run_detector(
        DetectorKind::DijkstraScholten,
        cfg,
        &reorder_net(20),
        9,
        SimTime::MAX,
    );
    assert!(out.detected);
    // re-run to grab the trace (run_detector consumes its sim): use the
    // token ring instead, which returns the trace directly
    let ring_trace = token_ring::run_ring(4, 2, 5, 3);
    let text = trace::to_text(&ring_trace);
    let back = trace::from_text(&text).expect("codec roundtrip");
    assert_eq!(ring_trace, back);
}

#[test]
fn theorem1_applies_to_simulated_traces() {
    let ring_trace = token_ring::run_ring(5, 1, 3, 7);
    // the token visits 0,1,2,3,4 in order: forward chain exists
    let fwd: Vec<ProcessSet> = (0..5).map(|i| ProcessSet::from_indices([i])).collect();
    assert!(hpl_model::has_chain(&ring_trace, 0, &fwd));
    // decompose with the reversed sets must produce a path
    let rev: Vec<ProcessSet> = fwd.iter().rev().copied().collect();
    let x = ring_trace.prefix(0);
    match decompose(&x, &ring_trace, &rev).expect("prefix ok") {
        Decomposition::Path(p) => assert!(p.verify(&x, &ring_trace, &rev)),
        Decomposition::Chain(w) => {
            // if a reverse chain exists it must verify (possible: the
            // retiring token's final idle round revisits processes)
            assert!(w.verify(&ring_trace, 0, &rev));
        }
    }
}

#[test]
fn termination_detection_satisfies_theorem5_footprint() {
    for kind in [
        DetectorKind::DijkstraScholten,
        DetectorKind::SafraRing,
        DetectorKind::Credit,
        DetectorKind::Naive { period: 120 },
    ] {
        let cfg = WorkloadConfig {
            n: 4,
            budget: 9,
            fanout: 2,
            work_time: 3,
            seed: 2,
            spare_root: false,
        };
        let out = run_detector(kind, cfg, &reorder_net(25), 3, SimTime::MAX);
        assert!(
            out.detected && out.detection_valid && out.chains_ok,
            "{}",
            out.detector
        );
    }
}

#[test]
fn crash_traces_expose_silence() {
    // a crashed process contributes no further events: its projection is
    // frozen, which is exactly why nobody can learn of the crash
    let mut sim = Simulation::builder(2)
        .seed(4)
        .network(reorder_net(10))
        .build(|p| -> Box<dyn hpl_sim::Node> {
            if p.index() == 0 {
                Box::new(hpl_protocols::failure::Heartbeater {
                    interval: 30,
                    monitor: ProcessId::new(1),
                })
            } else {
                Box::new(hpl_protocols::failure::Monitor::new(100))
            }
        });
    sim.schedule_crash(ProcessId::new(0), SimTime::from_ticks(100));
    sim.run_until(SimTime::from_ticks(1_000));
    let trace = sim.trace();
    let crash_pos = trace
        .iter()
        .position(|e| {
            matches!(e.kind(), hpl_model::EventKind::Internal { action }
                     if action == hpl_sim::engine::CRASH_ACTION)
        })
        .expect("crash recorded");
    // no p0 event after the crash
    assert!(trace
        .events()
        .iter()
        .skip(crash_pos + 1)
        .all(|e| !e.is_on(ProcessId::new(0))));
}

#[test]
fn live_runtime_traces_are_analysable() {
    struct Star {
        n: usize,
    }
    impl Behavior for Star {
        fn run(&mut self, ctx: &mut ThreadCtx) {
            if ctx.me().index() == 0 {
                for _ in 1..self.n {
                    let _ = ctx.recv();
                }
                ctx.internal(hpl_model::ActionId::new(1));
            } else {
                ctx.send(ProcessId::new(0), 1);
            }
        }
    }
    let n = 4;
    let trace = Runtime::new(n).run(|_| Box::new(Star { n }));
    let hb = CausalClosure::new(&trace);
    let hub_mark = trace.iter().position(|e| e.is_internal()).expect("marker");
    for i in 1..n {
        let p = ProcessId::new(i);
        let send_pos = trace.iter().position(|e| e.is_on(p)).expect("spoke sent");
        assert!(
            hb.happened_before(send_pos, hub_mark),
            "chain ⟨p{i} p0⟩ must exist in the live trace"
        );
    }
}

#[test]
fn detection_validation_rejects_truncated_runs() {
    // run a detector but stop the simulation before completion: either
    // no detection happened yet, or validation still passes — never an
    // invalid detection
    let cfg = WorkloadConfig {
        n: 4,
        budget: 20,
        fanout: 2,
        work_time: 5,
        seed: 8,
        spare_root: false,
    };
    let out = run_detector(
        DetectorKind::SafraRing,
        cfg,
        &reorder_net(30),
        6,
        SimTime::from_ticks(40),
    );
    assert!(!out.detected, "truncated run cannot have detected");
}

#[test]
fn snapshot_cuts_live_in_the_cut_lattice() {
    // the cut a Chandy–Lamport snapshot records must be a consistent cut
    // of the recorded trace — checked with the model's lattice machinery
    use hpl_model::{Cut, CutLattice};
    let trace = token_ring::run_ring(3, 2, 4, 11);
    let lattice = CutLattice::new(&trace);
    // every prefix cut is consistent; spot-check the lattice laws hold
    // on this real trace
    let full = lattice.full_cut();
    assert!(lattice.is_consistent(&full));
    assert!(lattice.is_consistent(&Cut::empty(3)));
    let cuts = lattice.enumerate();
    assert!(cuts.len() > trace.len());
    for pair in cuts.windows(2) {
        assert!(lattice.is_consistent(&pair[0].meet(&pair[1])));
        assert!(lattice.is_consistent(&pair[0].join(&pair[1])));
    }
    // and every consistent cut really is a possible global state
    for cut in cuts.iter().take(50) {
        let c = lattice.cut_computation(cut);
        assert_eq!(c.len(), cut.len());
    }
}

#[test]
fn verify_detection_and_chains_reject_traces_without_detect() {
    let ring_trace = token_ring::run_ring(3, 1, 2, 0);
    assert!(verify_detection(&ring_trace).is_err());
    assert!(!detection_chains_ok(&ring_trace));
}
