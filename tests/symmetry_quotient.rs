//! Correctness suite for the symmetry-quotient subsystem.
//!
//! Certifies the two contracts the quotient rests on:
//!
//! 1. **Canonical forms are permutation-invariant fixpoints** — for any
//!    computation `x` and declared group `G`, every relabeling `π·x`
//!    has the same canonical key, and that key is the minimum over the
//!    group of the structural signatures (proptests below).
//! 2. **Formula equivalence** — every formula in the corpus evaluates
//!    identically on the quotient universe (orbit-aware
//!    [`Evaluator::with_symmetry`]) and on the full universe, across
//!    seeds × shard counts {1, 2, 8}, and the orbit multiplicities
//!    expand quotient satisfaction counts to exact full-universe counts.
//!
//! The corpus follows the soundness contract **enforced** by
//! [`Evaluator::with_symmetry`]: atoms declared invariant under the
//! group (and interleaving-invariant per the paper); nested `knows`
//! only over group-stabilized process sets; `Everyone`/`Common` nested
//! freely; arbitrary `knows` only outermost. Since PR 5 the contract is
//! checked, not documented: the grid additionally certifies that the
//! soundness checker admits the whole corpus under
//! [`QuotientPolicy::Reject`], and the adversarial suite at the bottom
//! certifies the other direction — every formula where quotient and
//! full evaluation diverge is classified out of contract, rejected by
//! `Reject` and corrected by `Expand`.

use hpl_core::symmetry::struct_signature;
use hpl_core::{
    canonical_key, check_closure, enumerate_sharded, CompId, CoreError, EnumerationLimits,
    Evaluator, Formula, Interpretation, Invariance, LocalStep, LocalView, ProtoAction, Protocol,
    QuotientPolicy, ShardConfig, ShardedEnumeration, VarianceCause,
};
use hpl_model::{
    ActionId, Computation, ComputationBuilder, MessageId, ProcessId, ProcessSet, SymmetryGroup,
};
use hpl_protocols::gossip::PushGossip;
use hpl_protocols::token_bus::{BroadcastBus, TokenBus};
use hpl_protocols::two_generals::TwoGenerals;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

// ---------------------------------------------------------------------
// Symmetric protocols driving the equivalence grid
// ---------------------------------------------------------------------

/// `n` interchangeable processes, up to `k` internal steps each — the
/// minimal protocol invariant under the full symmetric group.
struct SymClocks {
    n: usize,
    k: usize,
}

impl Protocol for SymClocks {
    fn system_size(&self) -> usize {
        self.n
    }

    fn actions(&self, _p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
        if view.len() < self.k {
            vec![ProtoAction::Internal {
                action: ActionId::new(view.len() as u32),
            }]
        } else {
            vec![]
        }
    }

    fn symmetry(&self) -> SymmetryGroup {
        SymmetryGroup::Full { n: self.n }
    }
}

/// A seeded pseudo-random protocol that is invariant under ring
/// rotations by construction: the enabled steps hash the local view
/// with communication peers encoded as **relative offsets**
/// `(peer − me) mod n`, and sends target relative offsets — so
/// relabeling every process through a rotation maps the protocol onto
/// itself while the seed still drives irregular branching.
struct SeededRing {
    n: usize,
    k: usize,
    seed: u64,
}

impl SeededRing {
    fn mix(&self, p: ProcessId, view: &LocalView) -> u64 {
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for s in view.steps() {
            let tag = match *s {
                LocalStep::Sent { to, payload } => {
                    let off = (to.index() + self.n - p.index()) % self.n;
                    (1u64 << 32) | ((off as u64) << 16) | u64::from(payload)
                }
                LocalStep::Received { from, payload } => {
                    let off = (from.index() + self.n - p.index()) % self.n;
                    (2u64 << 32) | ((off as u64) << 16) | u64::from(payload)
                }
                LocalStep::Did { action } => (3u64 << 32) | u64::from(action.tag()),
            };
            h = (h ^ tag).wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

impl Protocol for SeededRing {
    fn system_size(&self) -> usize {
        self.n
    }

    fn actions(&self, p: ProcessId, view: &LocalView) -> Vec<ProtoAction> {
        if view.len() >= self.k {
            return vec![];
        }
        let h = self.mix(p, view);
        let mut out = Vec::new();
        if h & 1 != 0 {
            let off = 1 + ((h >> 8) as usize) % (self.n - 1);
            out.push(ProtoAction::Send {
                to: pid((p.index() + off) % self.n),
                payload: ((h >> 16) & 3) as u32,
            });
        }
        if h & 2 != 0 {
            out.push(ProtoAction::Internal {
                action: ActionId::new(((h >> 24) & 7) as u32),
            });
        }
        out
    }

    fn symmetry(&self) -> SymmetryGroup {
        SymmetryGroup::Rotations { n: self.n }
    }
}

// ---------------------------------------------------------------------
// The formula corpus
// ---------------------------------------------------------------------

/// Atoms invariant under any process relabeling and under interleaving
/// (they read only multiset/count structure of the computation) —
/// registered as such, so the soundness checker admits nesting them.
fn invariant_atoms(n: usize, interp: &mut Interpretation) -> Vec<Formula> {
    let a = interp.register_invariant("nonempty", |c| !c.is_empty());
    let b = interp.register_invariant("busy", |c| c.len() >= 3);
    let s = interp.register_invariant("any-send", |c| c.sends() >= 1);
    let w = interp.register_invariant("some-proc-two-events", move |c| {
        (0..n).any(|i| c.iter().filter(|e| e.is_on(pid(i))).count() >= 2)
    });
    [a, b, s, w].into_iter().map(Formula::atom).collect()
}

/// The corpus sound for nesting over the quotient: boolean combinations
/// of invariant atoms, `Everyone`/`Common` towers, and `knows` towers
/// over the group-stabilized sets.
fn invariant_corpus(atoms: &[Formula], stabilized: &[ProcessSet]) -> Vec<Formula> {
    let (a, b, s, w) = (&atoms[0], &atoms[1], &atoms[2], &atoms[3]);
    let mut fs = vec![
        a.clone(),
        b.clone(),
        s.clone(),
        w.clone(),
        a.clone().not(),
        a.clone().and(s.clone()),
        b.clone().or(w.clone()),
        s.clone().iff(w.clone()),
        Formula::everyone(a.clone()),
        Formula::everyone(Formula::everyone(s.clone())),
        Formula::common(a.clone()),
        Formula::common(b.clone().not()),
    ];
    for &p in stabilized {
        fs.push(Formula::knows(p, a.clone()));
        fs.push(Formula::knows(p, s.clone().and(w.clone())));
        fs.push(Formula::knows(p, Formula::everyone(s.clone())));
        fs.push(Formula::everyone(Formula::knows(p, a.clone())));
        fs.push(Formula::sure(p, w.clone()));
    }
    fs
}

/// Outermost-only formulas: `knows` over every singleton, stabilized or
/// not — exact at representatives but with orbit-dependent satisfaction
/// sets, so they are compared pointwise, never by expanded counts.
fn outermost_corpus(n: usize, atoms: &[Formula]) -> Vec<Formula> {
    (0..n)
        .flat_map(|i| {
            let p = ProcessSet::singleton(pid(i));
            [
                Formula::knows(p, atoms[2].clone()),
                Formula::knows(p, Formula::everyone(atoms[0].clone())),
            ]
        })
        .collect()
}

// ---------------------------------------------------------------------
// The equivalence driver
// ---------------------------------------------------------------------

/// Enumerates `p` both ways and certifies, for shards {1, 2, 8} ×
/// streaming batch sizes {buffered, 7, default}: byte-determinism of
/// the quotient, pointwise formula agreement at every representative,
/// and exact multiplicity expansion for the invariant corpus.
fn assert_quotient_matches_full<P: Protocol + Sync>(
    p: &P,
    depth: usize,
    stabilized: &[ProcessSet],
    label: &str,
) {
    let limits = EnumerationLimits {
        max_events: depth,
        max_computations: 1_000_000,
    };
    let n = p.system_size();
    let full = enumerate_sharded(p, limits, &ShardConfig::with_shards(2))
        .expect("within budget")
        .universe;
    let mut interp = Interpretation::new();
    let atoms = invariant_atoms(n, &mut interp);
    let corpus = invariant_corpus(&atoms, stabilized);
    let outer = outermost_corpus(n, &atoms);
    let mut eval_full = Evaluator::new(full.universe(), &interp);

    let mut reference: Option<(Vec<Vec<u64>>, Vec<u64>)> = None;
    // one batch size per shard count so the grid also spans the
    // streaming-merge axis: fully buffered, tiny streamed batches, and
    // the default
    for (shards, batch) in [
        (1usize, usize::MAX),
        (2, 7),
        (8, hpl_core::DEFAULT_BATCH_NODES),
    ] {
        let tag = format!("{label} @ {shards} shard(s), batch {batch}");
        let cfg = ShardConfig::with_shards(shards)
            .quotient()
            .batch_nodes(batch);
        let q = enumerate_sharded(p, limits, &cfg).expect("within budget");
        let orbits = q.orbits.as_ref().expect("quotient mode attaches orbits");
        let qu = q.universe.universe();
        assert_eq!(
            orbits.full_size() as usize,
            q.stats.explored,
            "{tag}: multiplicities must cover the explored tree"
        );

        // byte-determinism across shard counts: same representatives in
        // the same order, same multiplicities
        let ids: Vec<Vec<u64>> = qu
            .iter()
            .map(|(_, c)| c.iter().map(|e| e.id().index() as u64).collect())
            .collect();
        let mults: Vec<u64> = qu.ids().map(|i| orbits.multiplicity(i)).collect();
        match &reference {
            None => reference = Some((ids, mults)),
            Some((rids, rmults)) => {
                assert_eq!(&ids, rids, "{tag}: representative drift");
                assert_eq!(&mults, rmults, "{tag}: multiplicity drift");
            }
        }

        // every representative is a member of the full universe under
        // the same event-id bindings
        let map: Vec<CompId> = qu
            .iter()
            .map(|(_, c)| {
                full.universe()
                    .id_of(c)
                    .expect("representative must be a full-universe member")
            })
            .collect();

        let mut eval_q = Evaluator::with_symmetry(qu, &interp, orbits);
        // the in-contract corpus must never be rejected: the checker
        // classifies every formula sound, and a Reject-policy evaluator
        // answers all of them with the same verdicts
        let mut eval_reject =
            Evaluator::with_symmetry_policy(qu, &interp, orbits, QuotientPolicy::Reject);
        for f in corpus.iter().chain(&outer) {
            let sq = eval_q.sat_set(f);
            let sf = eval_full.sat_set(f);
            for (rid, fid) in map.iter().enumerate() {
                assert_eq!(
                    sq.contains(rid),
                    sf.contains(fid.index()),
                    "{tag}: {f:?} disagrees at representative {rid}"
                );
            }
            assert!(
                eval_q.check_symmetry(f).is_sound(),
                "{tag}: checker must admit the in-contract formula {f:?}"
            );
            let rejected = eval_reject
                .try_sat_set(f)
                .unwrap_or_else(|e| panic!("{tag}: Reject refused in-contract {f:?}: {e}"));
            assert_eq!(rejected, sq, "{tag}: policies disagree on {f:?}");
        }
        for f in &corpus {
            assert!(
                eval_q.check_symmetry(f).is_invariant(),
                "{tag}: the nesting corpus must be fully invariant ({f:?})"
            );
            let sq = eval_q.sat_set(f);
            let sf = eval_full.sat_set(f);
            assert_eq!(
                orbits
                    .expanded_count(&sq)
                    .expect("corpus counts stay far below u64"),
                sf.count() as u64,
                "{tag}: expanded satisfaction count of {f:?}"
            );
        }
    }
}

fn full_set(n: usize) -> ProcessSet {
    ProcessSet::full(n)
}

/// Stabilized sets of the subgroup fixing `p0`: the fixed singleton,
/// its complement, and everything.
fn fixing_stabilized(n: usize) -> Vec<ProcessSet> {
    vec![
        ProcessSet::singleton(pid(0)),
        ProcessSet::singleton(pid(0)).complement(full_set(n)),
        full_set(n),
    ]
}

#[test]
fn sym_clocks_quotient_matches_full() {
    assert_quotient_matches_full(
        &SymClocks { n: 3, k: 2 },
        6,
        &[full_set(3)],
        "sym_clocks(3,2)",
    );
}

#[test]
fn seeded_ring_quotient_matches_full_across_seeds() {
    for seed in [11u64, 5417, 990_001] {
        assert_quotient_matches_full(
            &SeededRing { n: 3, k: 3, seed },
            5,
            &[full_set(3)],
            &format!("seeded_ring(seed={seed})"),
        );
    }
}

#[test]
fn broadcast_bus_quotient_matches_full() {
    assert_quotient_matches_full(
        &BroadcastBus::with_chatter(3, 1),
        6,
        &fixing_stabilized(3),
        "broadcast_bus(3,c1)",
    );
}

#[test]
fn push_gossip_quotient_matches_full() {
    assert_quotient_matches_full(
        &PushGossip { n: 3 },
        4,
        &fixing_stabilized(3),
        "push_gossip(3)",
    );
}

#[test]
fn trivial_group_protocols_quotient_matches_full() {
    // under the trivial group the quotient is exactly the [D]-dedupe and
    // every process set is stabilized, so the corpus may use them all
    let all_sets: Vec<ProcessSet> = (0..2)
        .map(|i| ProcessSet::singleton(pid(i)))
        .chain([full_set(2)])
        .collect();
    assert_quotient_matches_full(
        &TwoGenerals::with_deliberation(2, 2),
        5,
        &all_sets,
        "two_generals(2,d2)",
    );
    let bus_sets: Vec<ProcessSet> = (0..3)
        .map(|i| ProcessSet::singleton(pid(i)))
        .chain([full_set(3)])
        .collect();
    assert_quotient_matches_full(
        &TokenBus::with_chatter(3, 2),
        6,
        &bus_sets,
        "token_bus(3,c2)",
    );
}

#[test]
fn declared_groups_are_really_automorphism_groups() {
    let limits = EnumerationLimits {
        max_events: 5,
        max_computations: 1_000_000,
    };
    let clocks = SymClocks { n: 3, k: 2 };
    let pu = hpl_core::enumerate(&clocks, limits).unwrap();
    assert!(check_closure(&pu, &clocks.symmetry().elements_for(3)).is_ok());
    for seed in [11u64, 5417, 990_001] {
        let ring = SeededRing { n: 4, k: 3, seed };
        let pu = hpl_core::enumerate(&ring, limits).unwrap();
        assert!(
            check_closure(&pu, &ring.symmetry().elements_for(4)).is_ok(),
            "seed {seed}: rotations must be automorphisms of the seeded ring"
        );
    }
}

// ---------------------------------------------------------------------
// The soundness hole, demonstrated and closed
// ---------------------------------------------------------------------

/// The minimal witness of the latent bug this PR closes: two
/// interchangeable clocks, nested `knows` over the (non-stabilized)
/// singletons. `Trust` — the old, unchecked behavior — returns a
/// silently wrong verdict; the checker pinpoints it, `Reject` turns it
/// into a typed error, and `Expand` (the new default) corrects it.
#[test]
fn trust_divergence_is_classified_rejected_and_corrected() {
    let p = SymClocks { n: 2, k: 1 };
    let limits = EnumerationLimits {
        max_events: 2,
        max_computations: 1_000,
    };
    let full = enumerate_sharded(&p, limits, &ShardConfig::with_shards(2))
        .expect("within budget")
        .universe;
    let q = enumerate_sharded(&p, limits, &ShardConfig::with_shards(2).quotient())
        .expect("within budget");
    let orbits = q.orbits.as_ref().expect("quotient attaches orbits");
    let qu = q.universe.universe();

    let mut interp = Interpretation::new();
    let nonempty = Formula::atom(interp.register_invariant("nonempty", |c| !c.is_empty()));
    let inner = Formula::knows(ProcessSet::singleton(pid(0)), nonempty);
    let f = Formula::knows(ProcessSet::singleton(pid(1)), inner.clone());

    let mut eval_full = Evaluator::new(full.universe(), &interp);
    let sf = eval_full.sat_set(&f);
    let map: Vec<CompId> = qu
        .iter()
        .map(|(_, c)| {
            full.universe()
                .id_of(c)
                .expect("representative is a member")
        })
        .collect();

    // Trust (the old default) silently diverges on this formula …
    let mut trust = Evaluator::with_symmetry_policy(qu, &interp, orbits, QuotientPolicy::Trust);
    let st = trust.sat_set(&f);
    let diverged = map
        .iter()
        .enumerate()
        .any(|(rid, fid)| st.contains(rid) != sf.contains(fid.index()));
    assert!(
        diverged,
        "the latent bug must be reproducible under Trust, or this witness is vacuous"
    );

    // … the checker classifies it out of contract, naming the inner
    // knowledge operator and a generator moving its process set …
    let mut expand = Evaluator::with_symmetry(qu, &interp, orbits);
    assert_eq!(expand.quotient_policy(), Some(QuotientPolicy::Expand));
    match expand.check_symmetry(&f) {
        Invariance::OutOfContract(v) => {
            assert_eq!(v.operator, f);
            assert_eq!(v.subformula, inner);
            match &v.cause {
                VarianceCause::MovedSet { set, generator } => {
                    assert_eq!(*set, ProcessSet::singleton(pid(0)));
                    assert!(!generator.stabilizes(*set));
                }
                other => panic!("wrong cause: {other:?}"),
            }
            assert!(v.describe(&interp).contains("nonempty"));
        }
        other => panic!("expected OutOfContract, got {other:?}"),
    }

    // … Reject refuses it with the same typed diagnosis …
    let mut reject = Evaluator::with_symmetry_policy(qu, &interp, orbits, QuotientPolicy::Reject);
    match reject.try_sat_set(&f) {
        Err(CoreError::QuotientUnsound(v)) => {
            assert!(matches!(v.cause, VarianceCause::MovedSet { .. }));
        }
        other => panic!("expected QuotientUnsound, got {other:?}"),
    }

    // … and Expand, the new default, matches the full universe exactly.
    let se = expand.sat_set(&f);
    for (rid, fid) in map.iter().enumerate() {
        assert_eq!(
            se.contains(rid),
            sf.contains(fid.index()),
            "Expand must agree with the full universe at representative {rid}"
        );
    }
}

// ---------------------------------------------------------------------
// Adversarial soundness suite: random formulas, many of them breaking
// the contract on purpose
// ---------------------------------------------------------------------

use std::sync::OnceLock;

struct AdversarialSetup {
    full: ShardedEnumeration,
    quotient: ShardedEnumeration,
}

fn enumerate_both<P: Protocol + Sync>(p: &P, depth: usize) -> AdversarialSetup {
    let limits = EnumerationLimits {
        max_events: depth,
        max_computations: 1_000_000,
    };
    AdversarialSetup {
        full: enumerate_sharded(p, limits, &ShardConfig::with_shards(2)).expect("within budget"),
        quotient: enumerate_sharded(p, limits, &ShardConfig::with_shards(2).quotient())
            .expect("within budget"),
    }
}

/// The token star under `fixing(3, 0)`: relabelings of `p1`/`p2`.
fn star_setup() -> &'static AdversarialSetup {
    static S: OnceLock<AdversarialSetup> = OnceLock::new();
    S.get_or_init(|| enumerate_both(&BroadcastBus::with_chatter(3, 1), 4))
}

/// Fully interchangeable clocks under `S_3`.
fn clocks_setup() -> &'static AdversarialSetup {
    static S: OnceLock<AdversarialSetup> = OnceLock::new();
    S.get_or_init(|| enumerate_both(&SymClocks { n: 3, k: 2 }, 4))
}

/// Honest declarations: two genuinely invariant atoms, two genuinely
/// relabeling-dependent ones (they name `p1`/`p2`, which both groups
/// move).
fn adversarial_interp() -> (Interpretation, Vec<Formula>) {
    let mut interp = Interpretation::new();
    let atoms = vec![
        Formula::atom(interp.register_invariant("nonempty", |c| !c.is_empty())),
        Formula::atom(interp.register_invariant("any-send", |c| c.sends() >= 1)),
        Formula::atom(interp.register("p1-acted", |c| c.iter().any(|e| e.is_on(pid(1))))),
        Formula::atom(interp.register("p2-quiet", |c| c.iter().all(|e| !e.is_on(pid(2))))),
    ];
    (interp, atoms)
}

/// A random formula mixing invariant and dependent atoms, booleans and
/// knowledge operators over arbitrary process sets — by construction
/// most draws violate the quotient contract one way or another.
fn random_formula(rng: &mut StdRng, atoms: &[Formula], n: usize, depth: usize) -> Formula {
    if depth == 0 {
        return atoms[rng.random_range(0..atoms.len())].clone();
    }
    let any_set = |rng: &mut StdRng| {
        let bits = rng.random_range(1..(1u32 << n));
        ProcessSet::from_indices((0..n).filter(|i| bits >> i & 1 == 1))
    };
    match rng.random_range(0..8) {
        0 => random_formula(rng, atoms, n, depth - 1).not(),
        1 => random_formula(rng, atoms, n, depth - 1).and(random_formula(rng, atoms, n, depth - 1)),
        2 => random_formula(rng, atoms, n, depth - 1).or(random_formula(rng, atoms, n, depth - 1)),
        3 => random_formula(rng, atoms, n, depth - 1).implies(random_formula(
            rng,
            atoms,
            n,
            depth - 1,
        )),
        4 => {
            let p = any_set(rng);
            Formula::knows(p, random_formula(rng, atoms, n, depth - 1))
        }
        5 => {
            let p = any_set(rng);
            Formula::sure(p, random_formula(rng, atoms, n, depth - 1))
        }
        6 => Formula::everyone(random_formula(rng, atoms, n, depth - 1)),
        _ => Formula::common(random_formula(rng, atoms, n, depth - 1)),
    }
}

/// One adversarial case: certifies, for a random formula,
///
/// 1. any Trust-vs-full divergence is classified out of contract,
/// 2. `Expand` always matches the full universe pointwise at the
///    representatives,
/// 3. `Reject` admits exactly the formulas the checker calls sound
///    (and answers them identically), and
/// 4. invariant formulas expand their satisfaction counts exactly.
fn adversarial_case(setup: &AdversarialSetup, n: usize, seed: u64) {
    let (interp, atoms) = adversarial_interp();
    let mut rng = StdRng::seed_from_u64(seed);
    let f = random_formula(&mut rng, &atoms, n, 1 + (seed % 3) as usize);

    let full_u = setup.full.universe.universe();
    let orbits = setup.quotient.orbits.as_ref().expect("quotient");
    let qu = setup.quotient.universe.universe();
    let map: Vec<CompId> = qu
        .iter()
        .map(|(_, c)| full_u.id_of(c).expect("representative is a member"))
        .collect();

    let mut eval_full = Evaluator::new(full_u, &interp);
    let sf = eval_full.sat_set(&f);

    let mut trust = Evaluator::with_symmetry_policy(qu, &interp, orbits, QuotientPolicy::Trust);
    let st = trust.sat_set(&f);
    let diverged = map
        .iter()
        .enumerate()
        .any(|(rid, fid)| st.contains(rid) != sf.contains(fid.index()));
    let cls = trust.check_symmetry(&f);

    // (1) every silent wrong answer is caught by the static checker
    if diverged {
        assert!(
            !cls.is_sound(),
            "seed {seed}: {f:?} diverges under Trust but was classified {cls:?}"
        );
    }

    // (2) the Expand fallback restores full-universe semantics
    let mut expand = Evaluator::with_symmetry(qu, &interp, orbits);
    let se = expand.sat_set(&f);
    for (rid, fid) in map.iter().enumerate() {
        assert_eq!(
            se.contains(rid),
            sf.contains(fid.index()),
            "seed {seed}: Expand diverges from full for {f:?} at representative {rid}"
        );
    }

    // (3) Reject admits exactly the sound formulas
    let mut reject = Evaluator::with_symmetry_policy(qu, &interp, orbits, QuotientPolicy::Reject);
    match (cls.is_sound(), reject.try_sat_set(&f)) {
        (true, Ok(sr)) => assert_eq!(sr, se, "seed {seed}: policies disagree on sound {f:?}"),
        (true, Err(e)) => panic!("seed {seed}: in-contract formula {f:?} rejected: {e}"),
        (false, Ok(_)) => panic!("seed {seed}: out-of-contract formula {f:?} admitted"),
        (false, Err(CoreError::QuotientUnsound(_))) => {}
        (false, Err(e)) => panic!("seed {seed}: unexpected error {e}"),
    }

    // (4) invariant verdicts expand their counts exactly
    if cls.is_invariant() {
        assert_eq!(
            orbits.expanded_count(&se).expect("small universes"),
            sf.count() as u64,
            "seed {seed}: expanded count of invariant {f:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ground truth vs checker on the token star (`fixing(3, 0)`).
    #[test]
    fn adversarial_soundness_on_the_star(seed in 0u64..1_000_000) {
        adversarial_case(star_setup(), 3, seed);
    }

    /// Ground truth vs checker on fully symmetric clocks (`S_3`).
    #[test]
    fn adversarial_soundness_on_symmetric_clocks(seed in 0u64..1_000_000) {
        adversarial_case(clocks_setup(), 3, seed);
    }
}

// ---------------------------------------------------------------------
// Canonical-form proptests
// ---------------------------------------------------------------------

/// A random valid computation over `n` processes (sends, matched
/// receives, internal events) — same shape as the `properties` suite.
fn random_computation(n: usize, steps: usize, seed: u64) -> Computation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ComputationBuilder::new(n);
    let mut in_flight: Vec<(ProcessId, MessageId)> = Vec::new();
    for _ in 0..steps {
        match rng.random_range(0..3) {
            0 => {
                let from = pid(rng.random_range(0..n));
                let to = pid(rng.random_range(0..n));
                let m = b.send(from, to).unwrap();
                in_flight.push((to, m));
            }
            1 if !in_flight.is_empty() => {
                let k = rng.random_range(0..in_flight.len());
                let (to, m) = in_flight.remove(k);
                b.receive(to, m).unwrap();
            }
            _ => {
                b.internal(pid(rng.random_range(0..n))).unwrap();
            }
        }
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Canonical keys are fixpoints of the group action: every
    /// relabeling of `x` canonicalizes to the same key, and that key is
    /// the minimum of the structural signatures over the group.
    #[test]
    fn canonical_key_is_permutation_invariant_fixpoint(
        seed in 0u64..10_000,
        n in 2usize..5,
        steps in 0usize..8,
        which in 0usize..3,
    ) {
        let x = random_computation(n, steps, seed);
        let group = match which {
            0 => SymmetryGroup::Full { n },
            1 => SymmetryGroup::Rotations { n },
            _ => SymmetryGroup::fixing(n, 0),
        };
        let els = group.elements_for(n);
        let key = canonical_key(&x, &els, &mut |_| 0);
        for pi in &els {
            let relabeled = x.permuted(pi);
            prop_assert_eq!(
                canonical_key(&relabeled, &els, &mut |_| 0),
                key.clone(),
                "relabeling through {} must not move the orbit key", pi
            );
            // minimality: the key never exceeds any element's signature
            let sig = struct_signature(&x, pi, ProcessSet::full(n));
            prop_assert!(key <= sig);
        }
    }

    /// Interleavings canonicalize identically even under the trivial
    /// group (the orbit relation contains `[D]`-isomorphism).
    #[test]
    fn canonical_key_collapses_interleavings(seed in 0u64..10_000, n in 2usize..4) {
        let x = random_computation(n, 6, seed);
        let els = SymmetryGroup::Trivial.elements_for(n);
        let key = canonical_key(&x, &els, &mut |_| 0);
        // any valid reordering of the same events is [D]-isomorphic;
        // reversing the roles of two independent internal suffix events
        // is the simplest one — build it via per-process projections:
        // the canonical key depends only on projections, so shuffling
        // cross-process order must not change it. Compare against the
        // key computed from a projection-preserving re-enumeration.
        let mut by_process: Vec<Vec<hpl_model::Event>> = vec![Vec::new(); n];
        for e in x.iter() {
            by_process[e.process().index()].push(e);
        }
        // round-robin interleaving of the projections, receives only
        // after their sends: retry round-robin until every receive's
        // send has been placed (valid because projections are FIFO).
        let mut placed: Vec<hpl_model::Event> = Vec::new();
        let mut cursors = vec![0usize; n];
        let mut sent: std::collections::HashSet<MessageId> = std::collections::HashSet::new();
        while placed.len() < x.len() {
            let mut progressed = false;
            for i in 0..n {
                if cursors[i] >= by_process[i].len() {
                    continue;
                }
                let e = by_process[i][cursors[i]];
                let ready = match e.kind() {
                    hpl_model::EventKind::Receive { message, .. } => sent.contains(&message),
                    _ => true,
                };
                if ready {
                    if let hpl_model::EventKind::Send { message, .. } = e.kind() {
                        sent.insert(message);
                    }
                    placed.push(e);
                    cursors[i] += 1;
                    progressed = true;
                }
            }
            prop_assert!(progressed, "round-robin must make progress on a valid computation");
        }
        let y = Computation::from_events(n, placed).expect("projection-preserving reorder");
        prop_assert_eq!(canonical_key(&y, &els, &mut |_| 0), key);
    }
}
