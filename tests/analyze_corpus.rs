//! The adversarial corpus behind the `repro analyze` CI gate: every
//! rule of every pass is proven to *fire* on a minimal seeded
//! violation (`tests/fixtures/analyze/*` for the source-level passes,
//! `contract::audit_fixture` for the protocol audit), waivers
//! round-trip (adding `analyze:allow(rule) reason` above the seeded
//! line suppresses the finding and echoes it as a waiver), and the
//! repository at HEAD is clean under its committed `analysis.toml`.

use hpl_analyze::{
    analyze_workspace, contract, determinism, lockgraph, AnalysisConfig, SourceFile,
};
use std::path::{Path, PathBuf};

/// Fixture directory name → the one rule its seeded violation fires.
const FIXTURES: &[(&str, &str)] = &[
    ("nondet_iteration", "nondet-iteration"),
    ("wall_clock", "wall-clock"),
    ("thread_spawn", "thread-spawn"),
    ("unseeded_rng", "unseeded-rng"),
    ("unwrap_hot", "unwrap-hot-path"),
    ("waiver_missing_reason", "waiver-missing-reason"),
    ("lock_cycle", "lock-cycle"),
    ("lock_across_blocking", "lock-across-blocking"),
];

fn fixture_dir(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/analyze")
        .join(name)
}

fn fixture_report(name: &str) -> hpl_analyze::AnalysisReport {
    let dir = fixture_dir(name);
    let cfg = AnalysisConfig::load(&dir.join("analysis.toml"))
        .unwrap_or_else(|e| panic!("{name}/analysis.toml parses: {e}"));
    analyze_workspace(&dir, &cfg).unwrap_or_else(|e| panic!("{name} scans: {e}"))
}

#[test]
fn every_fixture_fires_exactly_its_rule() {
    for (name, rule) in FIXTURES {
        let report = fixture_report(name);
        assert!(
            !report.of_rule(rule).is_empty(),
            "fixture {name} did not fire {rule}: {:?}",
            report.findings
        );
        assert!(
            report.findings.iter().all(|f| f.rule == *rule),
            "fixture {name} fired rules beyond {rule}: {:?}",
            report.findings
        );
    }
}

#[test]
fn every_contract_fixture_fires_its_rule() {
    let expected = [
        ("unclosed-group", "symmetry-not-closed"),
        ("overcap-group", "group-order-exceeded"),
        ("undeclared-invariant", "atom-invariance-missing"),
        ("wrongly-declared-invariant", "atom-invariance-unsound"),
        ("unwellformed-atom", "atom-not-wellformed"),
        ("validation-drift", "fault-validation-drift"),
    ];
    assert_eq!(
        expected.len(),
        contract::fixture_names().len(),
        "every registered contract fixture must be asserted here"
    );
    for (name, rule) in expected {
        let report = contract::audit_fixture(name)
            .unwrap_or_else(|e| panic!("contract fixture {name} builds: {e}"));
        assert!(
            !report.of_rule(rule).is_empty(),
            "contract fixture {name} did not fire {rule}: {:?}",
            report.findings
        );
    }
}

/// Inserts a waiver comment line above line `lineno` (1-indexed).
fn with_waiver(src: &str, lineno: usize, rule: &str) -> String {
    let mut out = String::new();
    for (i, l) in src.lines().enumerate() {
        if i + 1 == lineno {
            out.push_str(&format!(
                "    // analyze:allow({rule}) seeded violation, waived for the round-trip test\n"
            ));
        }
        out.push_str(l);
        out.push('\n');
    }
    out
}

#[test]
fn determinism_waivers_round_trip() {
    // every determinism fixture except the waiver-hygiene one (whose
    // finding is about waivers and must not itself be waivable-away
    // by another reasonless waiver)
    for (name, rule) in FIXTURES
        .iter()
        .filter(|(_, r)| !r.starts_with("lock") && *r != "waiver-missing-reason")
    {
        let dir = fixture_dir(name);
        let cfg = AnalysisConfig::load(&dir.join("analysis.toml")).expect("parses");
        let src = std::fs::read_to_string(dir.join("src/lib.rs")).expect("fixture source");

        let before = determinism::lint(&[SourceFile::parse("src/lib.rs", &src)], &cfg);
        let hit = &before.of_rule(rule)[0];
        let waived_src = with_waiver(&src, hit.line, rule);
        let after = determinism::lint(&[SourceFile::parse("src/lib.rs", &waived_src)], &cfg);
        assert!(
            after.of_rule(rule).is_empty(),
            "{name}: waiver above line {} must suppress {rule}: {:?}",
            hit.line,
            after.findings
        );
        assert_eq!(
            after.waivers_used.len(),
            1,
            "{name}: the waiver must be echoed into the report"
        );
        assert_eq!(after.waivers_used[0].2, *rule);
    }
}

#[test]
fn lock_across_blocking_waiver_round_trips() {
    let dir = fixture_dir("lock_across_blocking");
    let cfg = AnalysisConfig::load(&dir.join("analysis.toml")).expect("parses");
    let src = std::fs::read_to_string(dir.join("src/lib.rs")).expect("fixture source");
    let waived_src = src.replace(
        "// analyze:blocking(feed)",
        "// analyze:blocking(feed) analyze:allow(lock-across-blocking) the queue mutex is the consume token here",
    );
    assert_ne!(src, waived_src, "the blocking annotation must be present");
    let report = lockgraph::check(&[SourceFile::parse("src/lib.rs", &waived_src)], &cfg);
    assert!(
        report.of_rule("lock-across-blocking").is_empty(),
        "waived: {:?}",
        report.findings
    );
    assert_eq!(report.waivers_used.len(), 1);
    assert_eq!(report.waivers_used[0].2, "lock-across-blocking");
}

#[test]
fn the_repository_at_head_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let cfg = AnalysisConfig::load(&root.join("analysis.toml")).expect("committed config parses");
    let report = analyze_workspace(root, &cfg).expect("workspace scans");
    assert!(
        report.findings.is_empty(),
        "the analyze gate must be green at HEAD: {:?}",
        report.findings
    );
    // the gate is not vacuous: sources were scanned, protocols audited,
    // and the committed waivers are in effect
    assert!(report.files_scanned > 50);
    assert_eq!(report.protocols_audited, 6);
    assert!(report.waivers_used.len() >= 10);
}
