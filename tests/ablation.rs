//! Integration tests for the §6 generalizations (state views, belief)
//! and the extension protocols (gossip pricing, leader election),
//! exercised across crate boundaries.

use hpl_core::belief::{check_kd45, find_t_counterexamples, BeliefIndex, Plausibility};
use hpl_core::views::{check_event_semantics, BoundedMemory, EventCounts, FullHistory, ViewIndex};
use hpl_core::{enumerate, CompSet, EnumerationLimits};
use hpl_model::{ProcessId, ProcessSet};
use hpl_protocols::election::{leadership_chains_ok, run_election};
use hpl_protocols::failure::{crashed, CrashableWorker};
use hpl_protocols::gossip::{common_knowledge_unattainable, knowledge_price};
use hpl_sim::{ChannelConfig, DelayModel, NetworkConfig};

fn alive_sat(u: &hpl_core::Universe) -> CompSet {
    let mut s = CompSet::new(u.len());
    for (id, c) in u.iter() {
        if !crashed(c) {
            s.insert(id.index());
        }
    }
    s
}

#[test]
fn belief_is_fallible_exactly_where_knowledge_is_impossible() {
    // the §5 failure universe: knowledge of aliveness is impossible for
    // the observer; an optimistic *belief* is available but wrong in
    // precisely the crashed computations
    let pu = enumerate(
        &CrashableWorker { max_reports: 1 },
        EnumerationLimits::depth(4),
    )
    .expect("within budget");
    let u = pu.universe();
    let sat = alive_sat(u);
    let observer = ProcessSet::singleton(ProcessId::new(1));

    let optimist = Plausibility::new("crash-implausible", |c| u64::from(crashed(c)));
    let belief = BeliefIndex::new(u, &optimist);

    let wrong = find_t_counterexamples(&belief, observer, &sat);
    assert!(!wrong.is_empty());
    for v in &wrong {
        assert!(crashed(u.get(v.x)), "belief fails only in crashed worlds");
    }
    assert!(check_kd45(&belief, observer, &sat).is_empty());
}

#[test]
fn view_abstraction_hierarchy_is_monotone() {
    let pu = enumerate(
        &CrashableWorker { max_reports: 2 },
        EnumerationLimits::depth(5),
    )
    .expect("within budget");
    let u = pu.universe();
    let sat = alive_sat(u);
    let p = ProcessSet::singleton(ProcessId::new(1));

    let full = ViewIndex::new(u, FullHistory).knows_set(p, &sat);
    let window = ViewIndex::new(u, BoundedMemory { window: 2 }).knows_set(p, &sat);
    let counts = ViewIndex::new(u, EventCounts).knows_set(p, &sat);

    // coarser views can only know less (classes merge)
    assert!(window.is_subset(&full), "bounded memory ⊆ full history");
    assert!(counts.is_subset(&full), "counting ⊆ full history");
}

#[test]
fn full_history_views_never_violate_event_semantics() {
    for max_reports in [1usize, 2] {
        let pu = enumerate(
            &CrashableWorker { max_reports },
            EnumerationLimits::depth(4),
        )
        .expect("within budget");
        let u = pu.universe();
        let sat = alive_sat(u);
        // Lemma 4's hypothesis: the predicate must be local to P̄ — here
        // `alive` is local to p0, so only the observer P = {p1} qualifies
        // (for P = {p0}, p0's own crash legitimately changes what p0
        // knows about its own fact).
        let p = ProcessSet::singleton(ProcessId::new(1));
        let index = ViewIndex::new(u, FullHistory);
        assert!(check_event_semantics(&index, p, &sat).is_empty());
    }
}

#[test]
fn knowledge_price_ladder_is_strictly_increasing() {
    let rows = knowledge_price(3, 9, 2).expect("within budget");
    let prices: Vec<usize> = rows
        .iter()
        .map(|r| r.min_messages.expect("attainable at depth 9"))
        .collect();
    assert_eq!(prices.len(), 3);
    assert!(
        prices[0] < prices[1] && prices[1] < prices[2],
        "each knowledge level must cost strictly more messages: {prices:?}"
    );
    assert!(common_knowledge_unattainable(3, 6).expect("within budget"));
}

#[test]
fn election_footprint_scales() {
    let net = NetworkConfig::uniform(ChannelConfig {
        delay: DelayModel::Uniform { lo: 1, hi: 8 },
        drop_probability: 0.0,
        fifo: true,
    });
    for n in [3usize, 7, 12] {
        let out = run_election(n, &net, n as u64);
        assert!(out.leader.is_some(), "n={n}");
        assert!(leadership_chains_ok(&out.trace), "n={n}");
        assert!(out.messages >= n);
    }
}
