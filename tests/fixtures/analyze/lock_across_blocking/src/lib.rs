//! Seeded violation: a blocking channel receive while a mutex is held.
//! Expected finding: `lock-across-blocking`.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub fn drain(queue: &Mutex<Vec<u32>>, feed: &Receiver<u32>) {
    // analyze:acquire(queue)
    let mut guard = queue.lock().expect("unpoisoned");
    // analyze:blocking(feed)
    let next = feed.recv().expect("sender alive");
    guard.push(next);
}
