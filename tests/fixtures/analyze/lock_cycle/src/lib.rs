//! Seeded violation: two call paths acquiring the same pair of locks
//! in opposite order. Expected finding: `lock-cycle`.

use std::sync::Mutex;

pub fn forward(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    // analyze:acquire(alpha)
    let ga = a.lock().expect("unpoisoned");
    // analyze:acquire(beta)
    let gb = b.lock().expect("unpoisoned");
    *ga + *gb
}

pub fn backward(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    // analyze:acquire(beta)
    let gb = b.lock().expect("unpoisoned");
    // analyze:acquire(alpha)
    let ga = a.lock().expect("unpoisoned");
    *ga + *gb
}
