//! Seeded violation: a waiver that does not say why. Expected finding:
//! `waiver-missing-reason`.

pub fn quiet() -> u32 {
    // analyze:allow(unwrap-hot-path)
    7
}
