//! Seeded violation: reading the wall clock outside a clock-exempt
//! module. Expected finding: `wall-clock`.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
