//! Seeded violation: drawing entropy outside seed control. Expected
//! finding: `unseeded-rng`.

pub fn draw() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
