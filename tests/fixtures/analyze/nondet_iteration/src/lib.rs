//! Seeded violation: iterating a hash-ordered map inside a declared
//! deterministic region. Expected finding: `nondet-iteration`.

use std::collections::HashMap;

pub fn keys_in_hash_order(input: &[(String, u32)]) -> Vec<String> {
    let mut seen = HashMap::new();
    for (k, v) in input {
        seen.insert(k.clone(), *v);
    }
    let mut out = Vec::new();
    for k in seen.keys() {
        out.push(k.clone());
    }
    out
}
