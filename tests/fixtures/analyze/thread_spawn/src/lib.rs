//! Seeded violation: spawning a thread outside a sanctioned scheduler
//! module. Expected finding: `thread-spawn`.

pub fn fire() -> std::thread::JoinHandle<()> {
    std::thread::spawn(|| {})
}
