//! Seeded violation: `.unwrap()` in a declared library hot path.
//! Expected finding: `unwrap-hot-path`.

pub fn head(values: &[u32]) -> u32 {
    *values.first().unwrap()
}
