//! Integration property tests: the paper's theorems over random
//! computations and enumerated protocols, across crate boundaries.

use hpl_core::{decompose, fuse_theorem2, Decomposition, Evaluator, Formula, Interpretation};
use hpl_model::{ComputationBuilder, MessageId, ProcessId, ProcessSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn random_computation(n: usize, steps: usize, seed: u64) -> hpl_model::Computation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ComputationBuilder::new(n);
    let mut in_flight: Vec<(ProcessId, MessageId)> = Vec::new();
    for _ in 0..steps {
        match rng.random_range(0..3) {
            0 => {
                let from = ProcessId::new(rng.random_range(0..n));
                let to = ProcessId::new(rng.random_range(0..n));
                let m = b.send(from, to).unwrap();
                in_flight.push((to, m));
            }
            1 if !in_flight.is_empty() => {
                let k = rng.random_range(0..in_flight.len());
                let (to, m) = in_flight.remove(k);
                b.receive(to, m).unwrap();
            }
            _ => {
                b.internal(ProcessId::new(rng.random_range(0..n))).unwrap();
            }
        }
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1 with longer chains and 4 processes than the unit tests.
    #[test]
    fn theorem1_dichotomy_wide(
        seed in 0u64..500,
        steps in 4usize..24,
        cut_frac in 0usize..4,
        nsets in 1usize..5,
    ) {
        let z = random_computation(4, steps, seed);
        let cut = (z.len() * cut_frac) / 4;
        let x = z.prefix(cut);
        let sets: Vec<ProcessSet> = (0..nsets)
            .map(|i| ProcessSet::from_indices([(seed as usize + i) % 4]))
            .collect();
        let chain_exists = hpl_model::has_chain(&z, cut, &sets);
        match decompose(&x, &z, &sets).unwrap() {
            Decomposition::Path(p) => prop_assert!(p.verify(&x, &z, &sets)),
            Decomposition::Chain(w) => {
                prop_assert!(w.verify(&z, cut, &sets));
                prop_assert!(chain_exists);
            }
        }
        if !chain_exists {
            prop_assert!(decompose(&x, &z, &sets).unwrap().is_path());
        }
    }

    /// Theorem 2's fused computation always embeds back: fusing with the
    /// full set or the empty set reproduces y or z exactly.
    #[test]
    fn fusion_degenerate_identities(seed in 0u64..200, steps in 0usize..12) {
        let x = random_computation(3, 4, seed);
        let y = extend(&x, steps, seed.wrapping_add(1), 1_000);
        let z = extend(&x, steps, seed.wrapping_add(2), 2_000);
        let d = ProcessSet::full(3);
        // P = D keeps all of y (chain ⟨∅ …⟩ cannot exist)
        let w = fuse_theorem2(&x, &y, &z, d).unwrap();
        prop_assert!(y.agrees_on(&w, d));
        // P = ∅ keeps all of z
        let w2 = fuse_theorem2(&x, &y, &z, ProcessSet::EMPTY).unwrap();
        prop_assert!(z.agrees_on(&w2, d));
    }

    /// Knowledge implies truth (axiom K4) on universes built from random
    /// computation prefixes.
    #[test]
    fn knowledge_implies_truth_on_random_universes(seed in 0u64..100, steps in 1usize..14) {
        let z = random_computation(3, steps, seed);
        let mut universe = hpl_core::Universe::new(3);
        for pfx in z.prefixes() {
            universe.insert(pfx).unwrap();
        }
        let mut interp = Interpretation::new();
        let busy = interp.register("busy", |c| c.sends() >= 2);
        let mut eval = Evaluator::new(&universe, &interp);
        for pi in 0..3 {
            let k = Formula::knows(
                ProcessSet::from_indices([pi]),
                Formula::atom(busy),
            );
            let ks = eval.sat_set(&k);
            let bs = eval.sat_set(&Formula::atom(busy));
            prop_assert!(ks.is_subset(&bs), "K ⊆ ⟦b⟧ must hold");
        }
    }
}

fn extend(
    x: &hpl_model::Computation,
    steps: usize,
    seed: u64,
    id_base: usize,
) -> hpl_model::Computation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ComputationBuilder::with_id_offsets(x.system_size(), id_base, id_base);
    let n = x.system_size();
    let mut in_flight: Vec<(ProcessId, MessageId)> = Vec::new();
    for _ in 0..steps {
        match rng.random_range(0..3) {
            0 => {
                let from = ProcessId::new(rng.random_range(0..n));
                let to = ProcessId::new(rng.random_range(0..n));
                let m = b.send(from, to).unwrap();
                in_flight.push((to, m));
            }
            1 if !in_flight.is_empty() => {
                let k = rng.random_range(0..in_flight.len());
                let (to, m) = in_flight.remove(k);
                b.receive(to, m).unwrap();
            }
            _ => {
                b.internal(ProcessId::new(rng.random_range(0..n))).unwrap();
            }
        }
    }
    x.extended(b.finish().events().iter().copied()).unwrap()
}

/// Theorem 5 checked against an enumerated protocol from the protocols
/// crate (cross-crate: enumeration + evaluator + chain detection).
#[test]
fn theorem5_on_the_token_bus() {
    let pu = hpl_protocols::token_bus::universe(3, 6).expect("within budget");
    let mut interp = Interpretation::new();
    let left = Formula::atom(interp.register("token-left-p0", |c| {
        c.iter().any(|e| e.is_on(ProcessId::new(0)) && e.is_send())
    }));
    let mut eval = Evaluator::new(pu.universe(), &interp);
    for target in [1usize, 2] {
        let sets = vec![ProcessSet::from_indices([target])];
        let report = hpl_core::transfer::check_theorem5_gain(&mut eval, &sets, &left);
        assert!(report.passed(), "{:?}", report.violations);
        assert!(report.antecedent_hits > 0, "p{target} does gain knowledge");
    }
}
