//! Telemetry must be observation-only: enumerating with the recorder
//! fully enabled (counters, histograms, span tracing) must produce a
//! universe byte-identical to enumeration with it disabled, at every
//! shard count. The recorder's only writes are atomics and an event
//! buffer — this test is the regression net proving no instrumentation
//! point ever leaks into merge ordering or id assignment.

use hpl_core::{enumerate_sharded, EnumerationLimits, ProtocolUniverse, ShardConfig};
use hpl_protocols::token_bus::TokenBus;

/// Byte-identity: sizes, per-id computations, event bindings, payloads
/// (the same checks as the sharded-vs-sequential determinism suite).
fn assert_identical(on: &ProtocolUniverse, off: &ProtocolUniverse, label: &str) {
    assert_eq!(
        on.universe().len(),
        off.universe().len(),
        "{label}: universe size"
    );
    for (id, c) in off.universe().iter() {
        assert_eq!(on.universe().get(id), c, "{label}: computation {id}");
        for e in c.iter() {
            assert_eq!(
                on.universe().event(e.id()),
                off.universe().event(e.id()),
                "{label}: binding of {:?}",
                e.id()
            );
        }
    }
    assert_eq!(
        on.payload_table(),
        off.payload_table(),
        "{label}: payload table"
    );
}

#[test]
fn universes_are_byte_identical_with_telemetry_on() {
    let protocol = TokenBus::with_chatter(3, 1);
    let limits = EnumerationLimits::depth(9);
    for shards in [1usize, 2, 8] {
        let cfg = ShardConfig::with_shards(shards).dedupe();
        let label = format!("token_bus shards={shards}");

        hpl_telemetry::reset();
        hpl_telemetry::set_enabled(false);
        hpl_telemetry::set_tracing(false);
        let off = enumerate_sharded(&protocol, limits, &cfg).expect("within budget");

        hpl_telemetry::set_enabled(true);
        hpl_telemetry::set_tracing(true);
        let on = enumerate_sharded(&protocol, limits, &cfg).expect("within budget");
        hpl_telemetry::set_tracing(false);
        hpl_telemetry::set_enabled(false);

        assert_identical(&on.universe, &off.universe, &label);
        // the instrumented run must actually have observed something,
        // or this test proves nothing
        let snap = hpl_telemetry::snapshot();
        assert!(
            snap.counters.get("enum.batches").copied().unwrap_or(0) > 0
                || !snap.histograms.is_empty(),
            "{label}: recorder saw no activity while enabled"
        );
        hpl_telemetry::reset();
    }
}
