//! Real threads, analysed with the paper's machinery.
//!
//! Runs a relay over OS threads (crossbeam channels), records the live
//! interleaving as a validated computation, and then applies the
//! calculus: process-chain detection (Theorem 1 dichotomy) and the
//! Theorem-5 observation that the last process can only "know" the
//! relay value after a chain from the first.
//!
//! Run with `cargo run --example live_run`.

use hpl_core::{decompose, Decomposition};
use hpl_model::{CausalClosure, ProcessId, ProcessSet};
use hpl_runtime::{Behavior, Runtime, ThreadCtx};

struct Relay {
    n: usize,
}

impl Behavior for Relay {
    fn run(&mut self, ctx: &mut ThreadCtx) {
        let me = ctx.me().index();
        if me == 0 {
            ctx.send(ProcessId::new(1), 1);
        } else if let Some((_, v)) = ctx.recv() {
            if me + 1 < self.n {
                ctx.send(ProcessId::new(me + 1), v + 1);
            } else {
                ctx.internal(hpl_model::ActionId::new(99)); // "value arrived"
            }
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 5;
    println!("running a {n}-thread relay on real OS threads…");
    let trace = Runtime::new(n).run(|_| Box::new(Relay { n }));
    println!("recorded computation ({} events):\n  {trace}", trace.len());

    // the forward chain exists; the reverse does not
    let fwd: Vec<ProcessSet> = (0..n).map(|i| ProcessSet::from_indices([i])).collect();
    let rev: Vec<ProcessSet> = fwd.iter().rev().copied().collect();
    println!("\nprocess chains in the live trace:");
    println!(
        "  ⟨p0 p1 p2 p3 p4⟩: {}",
        hpl_model::has_chain(&trace, 0, &fwd)
    );
    println!(
        "  ⟨p4 p3 p2 p1 p0⟩: {}",
        hpl_model::has_chain(&trace, 0, &rev)
    );

    // Theorem 1, constructively, on the live trace
    let x = trace.prefix(0);
    match decompose(&x, &trace, &rev)? {
        Decomposition::Path(p) => println!(
            "\ntheorem 1: no reverse chain ⇒ isomorphism path with {} intermediates",
            p.intermediates().len()
        ),
        Decomposition::Chain(_) => unreachable!("no reverse chain exists in a forward relay"),
    }

    // knowledge gain needs the chain: the final marker event is causally
    // after every send (Theorem 5's footprint in a real execution)
    let hb = CausalClosure::new(&trace);
    let marker = trace
        .iter()
        .position(|e| e.is_internal())
        .expect("arrival marker");
    let all_sends_before = trace
        .iter()
        .enumerate()
        .filter(|(_, e)| e.is_send())
        .all(|(i, _)| hb.happened_before(i, marker));
    println!("every send happened-before the arrival marker: {all_sends_before}");
    assert!(all_sends_before);
    Ok(())
}
