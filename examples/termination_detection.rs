//! §5 termination detection: the overhead table.
//!
//! Runs four detectors over diffusing workloads of increasing size and
//! prints the paper-style table of overhead messages vs underlying
//! messages, verifying for every run that (a) detection was semantically
//! correct and (b) the Theorem-5 knowledge-gain chains exist in the
//! recorded trace.
//!
//! Run with `cargo run --example termination_detection --release`.

use hpl_protocols::termination::{run_detector, DetectorKind, WorkloadConfig};
use hpl_sim::{ChannelConfig, DelayModel, NetworkConfig, SimTime};

fn main() {
    let net = NetworkConfig::uniform(ChannelConfig {
        delay: DelayModel::Uniform { lo: 1, hi: 30 },
        drop_probability: 0.0,
        fifo: false,
    });
    let detectors = [
        DetectorKind::DijkstraScholten,
        DetectorKind::SafraRing,
        DetectorKind::Credit,
        DetectorKind::Naive { period: 200 },
    ];

    println!("random diffusing workload (n=5, fanout=2):");
    println!(
        "{:>18} {:>6} {:>9} {:>9} {:>7} {:>6} {:>6}",
        "detector", "M", "overhead", "ratio", "time", "valid", "chains"
    );
    for &budget in &[8u64, 16, 32, 64, 128] {
        let cfg = WorkloadConfig {
            n: 5,
            budget,
            fanout: 2,
            work_time: 4,
            seed: budget, // vary the workload with its size
            spare_root: false,
        };
        for kind in detectors {
            let out = run_detector(kind, cfg, &net, 42, SimTime::MAX);
            println!(
                "{:>18} {:>6} {:>9} {:>9.2} {:>7} {:>6} {:>6}",
                out.detector,
                out.work_messages,
                out.overhead_messages,
                out.overhead_ratio(),
                out.detect_time
                    .map_or_else(|| "-".into(), |t| t.to_string()),
                out.detection_valid,
                out.chains_ok,
            );
            assert!(out.detected && out.detection_valid && out.chains_ok);
        }
    }

    println!("\nadversarial sequential workload (fanout=1, detector spared):");
    println!(
        "{:>18} {:>6} {:>9} {:>9}",
        "detector", "M", "overhead", "ratio"
    );
    for &budget in &[10u64, 20, 40] {
        let cfg = WorkloadConfig {
            n: 4,
            budget,
            fanout: 1,
            work_time: 2,
            seed: 7,
            spare_root: true,
        };
        for kind in [DetectorKind::DijkstraScholten, DetectorKind::Credit] {
            let out = run_detector(kind, cfg, &net, 11, SimTime::MAX);
            println!(
                "{:>18} {:>6} {:>9} {:>9.2}",
                out.detector,
                out.work_messages,
                out.overhead_messages,
                out.overhead_ratio()
            );
            assert!(
                out.overhead_ratio() >= 1.0,
                "the paper's Ω(M) bound binds on the adversarial workload"
            );
        }
    }

    println!("\nall runs detected correctly, with theorem-5 chains present.");
}
