//! The price of knowledge: gossip edition.
//!
//! Prints the minimum number of messages any computation needs before
//! depth-k nested knowledge of the rumor holds (exhaustive, small n),
//! then the dissemination behaviour of randomized push gossip at scale,
//! and finally the election footprint: a leader only emerges causally
//! downstream of everyone.
//!
//! Run with `cargo run --example epistemic_gossip --release`.

use hpl_protocols::election::{leadership_chains_ok, run_election};
use hpl_protocols::gossip::{common_knowledge_unattainable, knowledge_price, run_push_gossip};
use hpl_sim::{ChannelConfig, DelayModel, NetworkConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("how much does depth-k knowledge cost? (3 processes, exhaustive)");
    println!("{:>7} {:>14}", "depth", "min messages");
    for row in knowledge_price(3, 9, 2)? {
        println!(
            "{:>7} {:>14}",
            row.depth,
            row.min_messages
                .map_or_else(|| "unattainable".into(), |m| m.to_string())
        );
    }
    println!(
        "common knowledge attainable at any price? {}",
        if common_knowledge_unattainable(3, 5)? {
            "no (Corollary to Lemma 3)"
        } else {
            "yes?!"
        }
    );

    println!("\nrandomized push gossip at scale:");
    let net = NetworkConfig::uniform(ChannelConfig {
        delay: DelayModel::Uniform { lo: 1, hi: 10 },
        drop_probability: 0.0,
        fifo: false,
    });
    println!(
        "{:>4} {:>7} {:>10} {:>12}",
        "n", "fanout", "messages", "done at"
    );
    for (n, fanout) in [(16usize, 1usize), (16, 2), (16, 4), (64, 2), (64, 4)] {
        let out = run_push_gossip(n, fanout, 20, &net, 7);
        println!(
            "{:>4} {:>7} {:>10} {:>12}",
            n,
            fanout,
            out.messages,
            out.full_dissemination_at
                .map_or_else(|| "incomplete".into(), |t| t.to_string())
        );
    }

    println!("\nleader election (Chang–Roberts, 8 processes):");
    let ring_net = NetworkConfig::uniform(ChannelConfig {
        delay: DelayModel::Uniform { lo: 1, hi: 15 },
        drop_probability: 0.0,
        fifo: true,
    });
    for seed in 0..3 {
        let out = run_election(8, &ring_net, seed);
        println!(
            "  seed {seed}: leader {:?} after {} messages; chains from all: {}",
            out.leader,
            out.messages,
            leadership_chains_ok(&out.trace)
        );
        assert!(leadership_chains_ok(&out.trace));
    }
    println!("\nknowledge is bought with messages, level by level — Theorem 5 in action.");
    Ok(())
}
