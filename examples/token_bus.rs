//! The paper's §4.1 token bus, end to end.
//!
//! Enumerates every computation of the five-process token bus
//! `p q r s t` up to a depth bound and model-checks the paper's
//! nested-knowledge claim: whenever `r` holds the token,
//!
//! ```text
//! r knows ((q knows ¬token-at-p) ∧ (s knows ¬token-at-t))
//! ```
//!
//! Run with `cargo run --example token_bus --release`.

use hpl_core::{Evaluator, Formula};
use hpl_model::{ProcessId, ProcessSet};
use hpl_protocols::token_bus::{
    holds_token, paper_formula, token_atoms, universe, verify_paper_claim,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let depth = 8;
    println!("enumerating the 5-process token bus to depth {depth}…");
    let pu = universe(5, depth)?;
    println!("  {} system computations", pu.universe().len());

    let mut interp = hpl_core::Interpretation::new();
    let atoms = token_atoms(&mut interp, 5);
    let formula = paper_formula(&atoms);
    println!(
        "\nthe paper's claim, as a formula:\n  {}",
        formula.display_with(&interp)
    );

    // the same claim, written as text and parsed back:
    let parsed = hpl_core::parse("K{p2} (K{p1} !token-at-p0 & K{p3} !token-at-p4)", &interp)?;
    assert_eq!(parsed, formula, "text and builder forms agree");

    let mut eval = Evaluator::new(pu.universe(), &interp);
    let sat = eval.sat_set(&formula);
    let r = ProcessId::new(2);

    let mut holds = 0usize;
    let mut total = 0usize;
    for (id, c) in pu.universe().iter() {
        if holds_token(c, r) {
            total += 1;
            if sat.contains(id.index()) {
                holds += 1;
            }
        }
    }
    println!("\nr-holding computations: {total}; formula holds at {holds}");
    assert_eq!(holds, total, "the paper's claim must hold exhaustively");

    // the packaged check (used by the test suite and repro binary)
    let report = verify_paper_claim(6)?;
    println!(
        "packaged check at depth 6: {}/{} over {} computations → {}",
        report.formula_holds_count,
        report.r_holds_count,
        report.universe_size,
        if report.verified() {
            "VERIFIED"
        } else {
            "FAILED"
        }
    );

    // a contrast: r does NOT know where the token is before seeing it
    let mut eval2 = Evaluator::new(pu.universe(), &interp);
    let r_set = ProcessSet::singleton(r);
    let r_knows_q_free = Formula::knows(r_set, atoms[1].clone().not());
    let null_id = pu
        .universe()
        .iter()
        .find(|(_, c)| c.is_empty())
        .map(|(id, _)| id)
        .expect("null computation");
    println!(
        "\ncontrast — at null, r knows ¬token-at-q? {}",
        eval2.holds_at(&r_knows_q_free, null_id)
    );

    Ok(())
}
