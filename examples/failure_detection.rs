//! §5 failure detection: impossible without timeouts, routine with them.
//!
//! First model-checks the asynchronous impossibility (the observer is
//! never sure whether the worker crashed), then sweeps heartbeat
//! timeouts on the timed simulator and prints the latency/accuracy
//! trade-off.
//!
//! Run with `cargo run --example failure_detection --release`.

use hpl_protocols::failure::{sweep_timeouts, verify_impossibility};
use hpl_sim::{ChannelConfig, DelayModel, NetworkConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("asynchronous side (model-checked):");
    let report = verify_impossibility(2, 6)?;
    println!(
        "  universe: {} computations, {} with a crash",
        report.universe_size, report.crashed_count
    );
    println!(
        "  computations where the observer is sure about the crash: {}",
        report.observer_sure_count
    );
    assert!(report.verified(), "impossibility must hold");
    println!("  ⇒ failure detection is impossible without timeouts\n");

    println!("timed side (simulated heartbeats, interval 50, crash at t=5000):");
    let net = NetworkConfig::uniform(ChannelConfig {
        delay: DelayModel::Uniform { lo: 1, hi: 40 },
        drop_probability: 0.0,
        fifo: false,
    });
    println!(
        "{:>9} {:>16} {:>16}",
        "timeout", "false positive", "latency"
    );
    let rows = sweep_timeouts(&[60, 100, 200, 400, 800, 1600], 50, 5_000, &net, 17, 60_000);
    for row in &rows {
        println!(
            "{:>9} {:>16} {:>16}",
            row.timeout,
            row.false_positive,
            row.detection_latency
                .map_or_else(|| "-".into(), |l| l.to_string())
        );
    }

    // shape: generous timeouts are accurate, and latency grows with the
    // timeout; too-tight timeouts misfire.
    let accurate: Vec<_> = rows.iter().filter(|r| !r.false_positive).collect();
    assert!(!accurate.is_empty());
    for pair in accurate.windows(2) {
        if let (Some(a), Some(b)) = (pair[0].detection_latency, pair[1].detection_latency) {
            assert!(a <= b, "latency grows with the timeout");
        }
    }
    println!("\nshape verified: accuracy requires timeouts above the delay bound;");
    println!("latency then grows linearly with the chosen timeout.");
    Ok(())
}
