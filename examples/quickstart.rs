//! Quickstart: the calculus in five minutes.
//!
//! Builds a tiny universe by hand, tests isomorphism, decomposes a
//! prefix pair per Theorem 1, evaluates a knowledge formula, and prints
//! the isomorphism diagram as Graphviz DOT.
//!
//! Run with `cargo run --example quickstart`.

use how_processes_learn::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two processes p and q; p sends q a message.
    let (p, q) = (ProcessId::new(0), ProcessId::new(1));
    let mut pool = ScenarioPool::new(2);
    let (send, msg) = pool.send(p, q);
    let recv = pool.receive(q, p, msg);

    // Three computations: nothing, sent, sent-and-received.
    let x0 = pool.compose([])?;
    let x1 = pool.compose([send])?;
    let x2 = pool.compose([send, recv])?;

    println!("computations:");
    for (name, c) in [("x0", &x0), ("x1", &x1), ("x2", &x2)] {
        println!("  {name} = {c}");
    }

    // Isomorphism: q cannot distinguish x0 from x1 (its projection is
    // empty in both); p can.
    println!("\nisomorphism:");
    println!(
        "  x0 [q] x1 = {}",
        x0.agrees_on(&x1, ProcessSet::singleton(q))
    );
    println!(
        "  x0 [p] x1 = {}",
        x0.agrees_on(&x1, ProcessSet::singleton(p))
    );

    // Theorem 1: between x0 and x2 with the chain ⟨p q⟩ — the message
    // IS the chain, so decompose returns the chain witness. With ⟨q p⟩
    // no chain exists and we get the isomorphism path instead.
    println!("\ntheorem 1 (constructive):");
    let pq = [ProcessSet::singleton(p), ProcessSet::singleton(q)];
    match decompose(&x0, &x2, &pq)? {
        Decomposition::Chain(w) => println!("  ⟨p q⟩: chain via {:?}", w.event_ids()),
        Decomposition::Path(_) => println!("  ⟨p q⟩: isomorphism path"),
    }
    let qp = [ProcessSet::singleton(q), ProcessSet::singleton(p)];
    match decompose(&x0, &x2, &qp)? {
        Decomposition::Chain(w) => println!("  ⟨q p⟩: chain via {:?}", w.event_ids()),
        Decomposition::Path(path) => println!(
            "  ⟨q p⟩: isomorphism path through {} intermediate(s)",
            path.intermediates().len()
        ),
    }

    // Knowledge: q learns that the message was sent only by receiving it.
    let mut universe = Universe::new(2);
    let c0 = universe.insert(x0)?;
    let c1 = universe.insert(x1)?;
    let c2 = universe.insert(x2)?;

    let mut interp = Interpretation::new();
    let sent = interp.register("sent", |c| c.sends() > 0);
    let mut eval = Evaluator::new(&universe, &interp);

    let q_knows = Formula::knows(ProcessSet::singleton(q), Formula::atom(sent));
    println!("\nknowledge (q knows \"sent\"):");
    for (name, id) in [("x0", c0), ("x1", c1), ("x2", c2)] {
        println!("  at {name}: {}", eval.holds_at(&q_knows, id));
    }

    // The isomorphism diagram (Figure 3-1 style), as DOT.
    let diagram = IsomorphismDiagram::build(&universe).with_names(vec!["x0", "x1", "x2"]);
    println!("\nisomorphism diagram:\n{}", diagram.to_dot());

    Ok(())
}
