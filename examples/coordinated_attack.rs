//! Two generals: the knowledge ladder vs the common-knowledge wall.
//!
//! Each delivered acknowledgement buys exactly one more level of nested
//! knowledge of "the attack is planned" — but common knowledge is a
//! constant (Corollary to Lemma 3) and therefore never achieved.
//!
//! Run with `cargo run --example coordinated_attack --release`.

use hpl_core::{Evaluator, Interpretation};
use hpl_protocols::two_generals::{
    attack_atom, common_knowledge_impossible, knowledge_ladder, nested, universe,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pu = universe(3, 6)?;
    println!(
        "two-generals universe (≤3 rounds, depth 6): {} computations",
        pu.universe().len()
    );

    let mut interp = Interpretation::new();
    let attack = attack_atom(&mut interp);
    let mut eval = Evaluator::new(pu.universe(), &interp);

    println!("\nknowledge ladder (at the straight-line exchange):");
    let ladder = knowledge_ladder(&pu, &mut eval, &attack, 3);
    for (k, holds) in ladder.iter().enumerate() {
        println!(
            "  {} deliveries ⇒ depth-{k} knowledge {}",
            k,
            if *holds { "HOLDS" } else { "fails" }
        );
    }

    // one more level than delivered always fails
    let one_delivery = pu.find(|c| c.receives() == 1 && c.sends() == 1);
    let f2 = nested(2, &attack);
    for id in one_delivery {
        assert!(
            !eval.holds_at(&f2, id),
            "g0 cannot know g1 knows with only one delivery"
        );
    }
    println!("  (and depth k+1 provably fails after k deliveries)");

    println!("\ncommon knowledge:");
    let impossible = common_knowledge_impossible(&mut eval, &attack);
    println!(
        "  C(attack) is constant and false everywhere: {}",
        if impossible { "CONFIRMED" } else { "violated!" }
    );
    assert!(impossible);

    println!("\nthe generals can climb any finite ladder, but the wall");
    println!("(common knowledge) is unreachable — Corollary to Lemma 3.");
    Ok(())
}
